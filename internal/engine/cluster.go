package engine

import (
	"crypto/tls"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/multiradio/chanalloc/internal/cluster"
	"github.com/multiradio/chanalloc/internal/journal"
	"github.com/multiradio/chanalloc/internal/obs"
)

// Cluster is the membership-based Backend: instead of the coordinator
// dialing a static address list (the Socket backend), workers dial IN and
// register — so workers behind NAT, started late, or restarted mid-sweep
// can all join. The coordinator listens on one address, answers each
// connection's register handshake (protocol version, task registry and
// optional auth token, see registerHandshake), and tracks the membership in
// an internal/cluster registry: every frame a worker sends refreshes its
// liveness clock, and a worker silent past the eviction deadline is dropped
// with its in-flight jobs requeued for the survivors — the same requeue
// semantics the Socket backend applies to dead peers.
//
// Dispatch is streaming and pipelined: each peer has a configurable window
// of outstanding jobs (WithClusterWindow) instead of the Socket backend's
// lock-step send/receive, so a batch of small jobs pays one round-trip per
// WINDOW, not one per job. Results carry their job index, so they may
// complete out of order within the window; fan-in stays index-ordered and
// — because every job frame carries JobSeed(root, job) — byte-identical to
// the in-process pool for any window size, join order, or mid-batch
// join/leave (pinned by the backend-conformance suite).
//
// A batch dispatched with no members waits WithJoinWait for the first
// capable worker; a worker that joins after dispatch starts receives jobs
// immediately. The backend only fails on transport grounds when jobs are
// still unfinished and no capable worker has been connected for the whole
// join-wait.
type Cluster struct {
	lis       net.Listener
	addr      string
	window    int
	token     string
	tlsCfg    *tls.Config
	heartbeat time.Duration
	evict     time.Duration
	joinWait  time.Duration
	teardown  time.Duration

	journalPath  string
	journalEvery int
	resume       bool

	reg     *cluster.Registry
	mu      sync.Mutex // guards peers AND conns
	peers   map[int64]*clusterPeer
	conns   map[net.Conn]struct{} // every live connection, registered or not
	batchMu sync.Mutex            // serialises RunTask: peers carry one batch at a time

	// lastErr remembers the most recent peer failure for transport-error
	// reporting.
	errMu   sync.Mutex
	lastErr error

	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup // accept loop, monitor, peer readers
}

// ClusterOption configures a Cluster backend.
type ClusterOption func(*Cluster)

// WithClusterWindow sets the per-peer window of outstanding jobs (default
// 8). Window 1 degenerates to the Socket backend's lock-step dispatch;
// larger windows pipeline sends so small-job batches stop paying one
// round-trip per job. The window never affects results, only wall clock.
func WithClusterWindow(n int) ClusterOption {
	return func(c *Cluster) {
		if n > 0 {
			c.window = n
		}
	}
}

// WithClusterAuthToken sets the shared secret every register handshake must
// present; a mismatch — wrong token, or only one side configured — rejects
// the join loudly, like version skew (default: no token).
func WithClusterAuthToken(token string) ClusterOption {
	return func(c *Cluster) { c.token = token }
}

// WithClusterTLS makes the coordinator answer every joining connection with
// a TLS server handshake (see ServerTLSConfig) before the register
// exchange, so only workers dialing with the matching WithJoinTLS /
// -tls-ca get as far as the protocol. Frame bytes are unchanged — TLS sits
// under the NDJSON framing (default: plain connections).
func WithClusterTLS(cfg *tls.Config) ClusterOption {
	return func(c *Cluster) { c.tlsCfg = cfg }
}

// WithClusterJournal checkpoints batch progress to an append-only NDJSON
// file at path (see internal/journal): the batch's identity on the first
// line, then one entry per completed job carrying the exact result bytes.
// Without WithClusterResume the file is truncated at each RunTask; journal
// write failures are logged, never fatal — the checkpoint is a safety net,
// not a dependency (default: no journal).
func WithClusterJournal(path string) ClusterOption {
	return func(c *Cluster) { c.journalPath = path }
}

// WithClusterResume makes RunTask recover an existing journal first: jobs
// with a checkpointed result are filled in from the journal (counted in
// Stats.Resumed, never re-executed) and only the remainder is dispatched.
// The journal's batch identity — task, params hash, root seed, job count —
// must match exactly or the batch fails loudly; a missing file degenerates
// to a fresh journal. A torn final line (the previous coordinator died
// mid-append) is truncated silently.
func WithClusterResume(on bool) ClusterOption {
	return func(c *Cluster) { c.resume = on }
}

// WithClusterJournalFsync sets the journal's durability cadence: fsync
// after every n appended entries (default 1 — every entry; larger values
// trade a crash losing up to n-1 checkpoints for fewer disk stalls).
func WithClusterJournalFsync(n int) ClusterOption {
	return func(c *Cluster) {
		if n > 0 {
			c.journalEvery = n
		}
	}
}

// WithClusterHeartbeat sets the heartbeat cadence advertised to joining
// workers (default 2s; floored at 1ms — the cadence crosses the wire in
// whole milliseconds, and a sub-ms value would advertise as "none" while
// eviction still fired at 4× sub-ms, evicting every healthy worker). The
// eviction deadline defaults to 4× this value unless WithClusterEvictAfter
// overrides it.
func WithClusterHeartbeat(d time.Duration) ClusterOption {
	return func(c *Cluster) {
		if d > 0 {
			c.heartbeat = d
		}
	}
}

// WithClusterEvictAfter sets how long a worker may stay silent — no
// heartbeat, no result — before it is evicted and its in-flight jobs are
// requeued (default 4× the heartbeat cadence).
func WithClusterEvictAfter(d time.Duration) ClusterOption {
	return func(c *Cluster) {
		if d > 0 {
			c.evict = d
		}
	}
}

// WithJoinWait bounds the batch's accumulated time with NO capable worker
// connected (default 30s). The clock runs only while the membership (for
// the batch's task) is empty, pauses while a worker is serving, and resets
// when a job completes — so a worker stuck in a join/crash loop without
// ever finishing a job burns the budget instead of renewing it.
func WithJoinWait(d time.Duration) ClusterOption {
	return func(c *Cluster) {
		if d > 0 {
			c.joinWait = d
		}
	}
}

// WithClusterTeardown bounds Close's wait for per-connection goroutines
// after their transports are severed (default 5s, the shared teardown
// grace).
func WithClusterTeardown(d time.Duration) ClusterOption {
	return func(c *Cluster) { c.teardown = d }
}

// NewCluster listens on addr — "host:port", ":port" (TCP), "unix:/path" or
// a bare filesystem path (unix socket) — and returns a membership Backend
// accepting worker joins (JoinAndServe, engineworker -join) from now on.
// Call Close when done with the backend, not per batch: the membership
// outlives individual RunTask calls.
func NewCluster(addr string, opts ...ClusterOption) (*Cluster, error) {
	lis, err := listenWorkerAddr(addr)
	if err != nil {
		return nil, err
	}
	return NewClusterOn(lis, opts...), nil
}

// NewClusterOn is NewCluster over an existing listener (tests and callers
// that picked their own port).
func NewClusterOn(lis net.Listener, opts ...ClusterOption) *Cluster {
	c := &Cluster{
		lis:          lis,
		window:       8,
		heartbeat:    2 * time.Second,
		joinWait:     30 * time.Second,
		teardown:     defaultTeardownGrace,
		journalEvery: 1,
		reg:          cluster.NewRegistry(),
		peers:        map[int64]*clusterPeer{},
		conns:        map[net.Conn]struct{}{},
		closed:       make(chan struct{}),
	}
	for _, opt := range opts {
		opt(c)
	}
	if c.tlsCfg != nil {
		// The TLS listener wraps accepted conns; Addr() still reports the
		// inner listener's address, so the join address is unchanged.
		c.lis = tls.NewListener(lis, c.tlsCfg)
	}
	if c.heartbeat < time.Millisecond {
		c.heartbeat = time.Millisecond
	}
	if c.evict <= 0 {
		c.evict = 4 * c.heartbeat
	}
	if addr := lis.Addr(); addr.Network() == "unix" {
		c.addr = "unix:" + addr.String()
	} else {
		c.addr = addr.String()
	}
	c.wg.Add(2)
	go c.acceptLoop()
	go c.runMonitor()
	return c
}

// Name implements Backend.
func (c *Cluster) Name() string { return "cluster" }

// Addr returns the address workers join, formatted for JoinAndServe /
// `engineworker -join` ("host:port" or "unix:/path").
func (c *Cluster) Addr() string { return c.addr }

// Members reports the current membership snapshot (diagnostics).
func (c *Cluster) Members() []cluster.Member { return c.reg.Members() }

// Close tears the coordinator down: stop accepting joins, sever every live
// connection — registered members AND connections still mid-registration,
// which the registry cannot reach — and wait (bounded by the teardown
// grace) for the per-connection goroutines to drain. Workers are not
// notified beyond the close — their join loops will redial until a
// coordinator returns.
func (c *Cluster) Close() error {
	c.closeOnce.Do(func() {
		close(c.closed)
		c.lis.Close()
		c.closeConns()
	})
	return reap(c.teardown, func() error { c.wg.Wait(); return nil },
		func() error { c.closeConns(); return nil })
}

// closeConns severs every live connection (best effort).
func (c *Cluster) closeConns() {
	c.mu.Lock()
	conns := make([]net.Conn, 0, len(c.conns))
	for conn := range c.conns {
		conns = append(conns, conn)
	}
	c.mu.Unlock()
	for _, conn := range conns {
		conn.Close()
	}
}

// noteErr remembers a peer failure for transport-error reporting.
func (c *Cluster) noteErr(err error) {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	c.lastErr = err
}

// registerGrace bounds how long a fresh connection may sit silent before
// sending its register frame: a port scan, health-check probe or half-open
// client must not pin an admit goroutine (and, at teardown, Close) forever.
const registerGrace = 30 * time.Second

// acceptLoop admits joining workers until the listener closes, riding out
// transient accept failures via the shared acceptConns helper.
func (c *Cluster) acceptLoop() {
	defer c.wg.Done()
	err := acceptConns(c.lis, "engine cluster", func(conn net.Conn) {
		c.mu.Lock()
		c.conns[conn] = struct{}{}
		c.mu.Unlock()
		c.wg.Add(1)
		go c.admit(conn)
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "engine cluster: %v\n", err)
	}
}

// admit runs one connection's register handshake and, on success, turns it
// into a registered peer whose reader routes heartbeats and results until
// the transport ends.
func (c *Cluster) admit(conn net.Conn) {
	defer c.wg.Done()
	defer func() {
		c.mu.Lock()
		delete(c.conns, conn)
		c.mu.Unlock()
	}()
	enc := json.NewEncoder(conn)
	dec := json.NewDecoder(conn)
	conn.SetReadDeadline(time.Now().Add(registerGrace))
	tasks, err := acceptRegistration(enc, dec, c.token, c.heartbeat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "engine cluster: %s: %v\n", remoteName(conn), err)
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	p := &clusterPeer{
		conn:     conn,
		enc:      enc,
		remote:   remoteName(conn),
		inflight: map[int]time.Time{},
	}
	// Register and publish atomically under c.mu: a dispatcher woken by the
	// registry change must find the peer in c.peers on its next lookup, or
	// it would mark the member seen and skip it forever.
	c.mu.Lock()
	p.id = c.reg.Add(p.remote, tasks, func() error { return conn.Close() })
	c.peers[p.id] = p
	c.mu.Unlock()
	mPeers.Inc()

	// The reader is the peer's whole lifetime: when it returns — transport
	// failure, eviction's conn.Close, coordinator teardown — the peer
	// leaves, requeueing whatever it held.
	err = p.read(dec, c.reg)
	if err != nil {
		c.noteErr(fmt.Errorf("%s: %w", p.remote, err))
	}
	c.mu.Lock()
	delete(c.peers, p.id)
	c.mu.Unlock()
	c.reg.Remove(p.id)
	mPeers.Dec()
	conn.Close()
	p.leave()
}

// runMonitor evicts silent members until the coordinator closes.
func (c *Cluster) runMonitor() {
	defer c.wg.Done()
	mon := &cluster.Monitor{
		Registry:   c.reg,
		EvictAfter: c.evict,
		Tick:       c.heartbeat / 2,
		OnEvict: func(m cluster.Member) {
			mEvictions.Inc()
			obs.Emit("evict", m.Remote, m.ID, 0, 0)
			c.noteErr(fmt.Errorf("%s: evicted after %v of silence", m.Remote, c.evict))
		},
	}
	mon.Run(c.closed)
}

// clusterPeer is one registered worker connection.
type clusterPeer struct {
	id     int64
	conn   net.Conn
	remote string

	sendMu sync.Mutex // one frame at a time on the wire
	enc    *json.Encoder

	mu       sync.Mutex
	inflight map[int]time.Time // job -> dispatch time, owned by the active batch
	batch    *clusterBatch     // nil between batches
	window   chan struct{}     // per-batch counting semaphore of outstanding jobs
	gone     bool
	goneCh   chan struct{} // created per batch attachment; closed on leave
}

// send writes one frame (thread-safe: the batch sender and the heartbeat
// path never interleave partial frames).
func (p *clusterPeer) send(m *wireMsg) error {
	p.sendMu.Lock()
	defer p.sendMu.Unlock()
	return p.enc.Encode(m)
}

// read routes the peer's incoming frames for the connection's lifetime:
// heartbeats refresh the liveness clock, results go to the active batch.
// Any decode error ends the peer.
func (p *clusterPeer) read(dec *json.Decoder, reg *cluster.Registry) error {
	for {
		var m wireMsg
		if err := dec.Decode(&m); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		reg.Touch(p.id)
		switch m.Type {
		case wireHeartbeat:
			// The Touch was the payload.
			mHeartbeats.Inc()
		case wireResult:
			p.deliver(&m)
		default:
			return fmt.Errorf("unexpected frame %q from worker", m.Type)
		}
	}
}

// attach installs the active batch on the peer with a fresh window of
// `window` job credits. It returns the channel the batch's sender watches
// for the peer's departure.
func (p *clusterPeer) attach(b *clusterBatch, window int) <-chan struct{} {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.batch = b
	p.window = make(chan struct{}, window)
	p.goneCh = make(chan struct{})
	if p.gone {
		// The peer died before the batch attached; report it immediately.
		close(p.goneCh)
	}
	return p.goneCh
}

// detach uninstalls the batch at the end of dispatch; stray frames after
// this point are dropped.
func (p *clusterPeer) detach() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.batch = nil
	if len(p.inflight) != 0 { // the batch is over; nothing can still be owed
		p.inflight = map[int]time.Time{}
	}
}

// claim records a job as in-flight just before its frame is sent. It
// reports false if the peer is already gone (the caller requeues instead of
// sending).
func (p *clusterPeer) claim(job int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.gone {
		return false
	}
	p.inflight[job] = time.Now()
	mDispatched.Inc()
	mInflight.Inc()
	mWindowDepth.Observe(int64(len(p.inflight)))
	return true
}

// deliver hands a result frame to the active batch and frees the job's
// window credit. Results for jobs the peer does not hold (a batch that
// ended, a job requeued elsewhere after a spurious eviction) are dropped:
// the job index in the frame is only trusted when this peer demonstrably
// owns the job.
func (p *clusterPeer) deliver(m *wireMsg) {
	p.mu.Lock()
	start, owned := p.inflight[m.Job]
	b := p.batch
	window := p.window
	if !owned || b == nil {
		p.mu.Unlock()
		return
	}
	delete(p.inflight, m.Job)
	p.mu.Unlock()
	mCompleted.Inc()
	mInflight.Dec()
	// The job's credit is in the semaphore by construction (acquire happens
	// before claim, claim before send, send before any result), so this
	// never blocks; the default arm is belt and braces.
	select {
	case <-window:
	default:
	}
	b.complete(m, time.Since(start))
}

// leave ends the peer's participation: any jobs still in flight go back on
// the active batch's queue for the survivors, and the batch's sender is
// released.
func (p *clusterPeer) leave() {
	p.mu.Lock()
	if p.gone {
		p.mu.Unlock()
		return
	}
	p.gone = true
	b := p.batch
	jobs := make([]int, 0, len(p.inflight))
	for job := range p.inflight {
		jobs = append(jobs, job)
	}
	p.inflight = map[int]time.Time{}
	goneCh := p.goneCh
	p.mu.Unlock()
	mInflight.Add(-int64(len(jobs)))
	if b != nil {
		b.requeue(jobs)
	}
	if goneCh != nil {
		close(goneCh)
	}
}

// clusterBatch is the shared state of one RunTask dispatch.
type clusterBatch struct {
	task   string
	params json.RawMessage
	seed   uint64

	// queue holds every job not yet completed or in flight; its buffer is
	// the batch size, so a requeue (only possible while the job is pending)
	// never blocks. It closes exactly when the last job completes.
	queue    chan int
	results  []json.RawMessage
	errs     []string
	failed   []bool
	jobTimes []time.Duration

	pending  atomic.Int64
	done     chan struct{}
	requeues atomic.Int64
	// peerExit is a coalescing wakeup: the dispatcher re-examines the
	// membership whenever a sender goroutine exits (lost signals are fine —
	// a full buffer means a wakeup is already pending).
	peerExit chan struct{}

	// jnl, when set, checkpoints every completed job. Peer readers call
	// complete concurrently; jnlMu serialises their appends.
	jnl   *journal.Journal
	jnlMu sync.Mutex
}

// complete records one job's result — checkpointing it first, so a batch
// never reads as done with its last entry unwritten — and, on the last job,
// releases the whole batch.
func (b *clusterBatch) complete(m *wireMsg, took time.Duration) {
	b.jobTimes[m.Job] = took
	mDispatchLat.Observe(int64(took))
	if m.Error != "" {
		b.errs[m.Job] = m.Error
		b.failed[m.Job] = true
	} else {
		b.results[m.Job] = m.Value
	}
	if b.jnl != nil {
		e := journal.Entry{Job: m.Job}
		if m.Error != "" {
			e.Failed, e.Error = true, m.Error
		} else {
			e.Value = m.Value
		}
		b.jnlMu.Lock()
		err := b.jnl.Append(e)
		b.jnlMu.Unlock()
		if err != nil {
			// The checkpoint is a safety net: losing it degrades a future
			// resume, never this batch.
			fmt.Fprintf(os.Stderr, "engine cluster: %v\n", err)
		} else {
			mJournalWrites.Inc()
		}
	}
	if b.pending.Add(-1) == 0 {
		close(b.queue)
		close(b.done)
	}
}

// requeue returns a dead peer's in-flight jobs to the queue.
func (b *clusterBatch) requeue(jobs []int) {
	if len(jobs) == 0 {
		return
	}
	for _, job := range jobs {
		b.queue <- job
		b.requeues.Add(1)
	}
	mRequeues.Add(uint64(len(jobs)))
	obs.Emit("requeue", b.task, int64(len(jobs)), 0, 0)
}

// wakeDispatcher nudges the membership watcher (coalescing send).
func (b *clusterBatch) wakeDispatcher() {
	select {
	case b.peerExit <- struct{}{}:
	default:
	}
}

// RunTask implements Backend: stream the batch's jobs over every registered
// worker that announced the task — including workers that join mid-batch —
// with up to `window` jobs outstanding per peer, and fan the JSON results
// in by job index. Job errors surface with Map's semantics (every job still
// runs; the lowest-indexed failure returns with nil results, worded
// identically to every backend). A peer that dies or is evicted for silence
// has its in-flight jobs requeued for the survivors (Stats.Requeues); a
// distinct "cluster backend" transport error surfaces only when jobs are
// unfinished and no capable worker has been connected for the join-wait.
func (c *Cluster) RunTask(task string, params json.RawMessage, n int, opts ...Option) ([]json.RawMessage, Stats, error) {
	cfg := config{}
	for _, opt := range opts {
		opt(&cfg)
	}
	if _, ok := taskByName(task); !ok {
		return nil, Stats{}, fmt.Errorf("engine: unknown task %q (registered: %v)", task, TaskNames())
	}
	stats := Stats{Jobs: n}
	if n < 0 {
		return nil, stats, fmt.Errorf("engine: negative job count %d", n)
	}
	if n == 0 {
		return []json.RawMessage{}, stats, nil
	}
	mBatches.Inc()

	// One batch at a time: peers hold a single active-batch slot.
	c.batchMu.Lock()
	defer c.batchMu.Unlock()

	// This batch's transport-error report must describe THIS batch: an
	// earlier batch's peer trouble is history, not an explanation.
	c.errMu.Lock()
	c.lastErr = nil
	c.errMu.Unlock()

	start := time.Now()
	b := &clusterBatch{
		task:     task,
		params:   params,
		seed:     cfg.seed,
		queue:    make(chan int, n),
		results:  make([]json.RawMessage, n),
		errs:     make([]string, n),
		failed:   make([]bool, n),
		jobTimes: make([]time.Duration, n),
		done:     make(chan struct{}),
		peerExit: make(chan struct{}, 1),
	}

	// Open the checkpoint journal (and, on resume, recover completed jobs)
	// before anything is enqueued: recovered jobs never touch the queue, so
	// they cannot be re-executed by any interleaving of joins and deaths.
	recovered, err := c.openJournal(b, n)
	if err != nil {
		return nil, stats, err
	}
	if b.jnl != nil {
		defer func() {
			b.jnlMu.Lock()
			closeErr := b.jnl.Close()
			b.jnlMu.Unlock()
			if closeErr != nil {
				fmt.Fprintf(os.Stderr, "engine cluster: %v\n", closeErr)
			}
		}()
	}
	stats.Resumed = len(recovered)
	remaining := 0
	b.pending.Store(int64(n - len(recovered)))
	for job := 0; job < n; job++ {
		if recovered[job] {
			continue
		}
		b.queue <- job
		remaining++
	}

	var workers int
	if remaining > 0 {
		workers, err = c.dispatch(b)
	} else {
		// Every job came out of the journal: nothing to dispatch, so the
		// batch completes without waiting for a single worker to join.
		close(b.queue)
	}
	stats.Workers = workers
	stats.Wall = time.Since(start)
	obs.Emit("batch", task, int64(n), int64(workers), int64(stats.Resumed))
	stats.JobTimes = b.jobTimes
	stats.Requeues = int(b.requeues.Load())
	if err != nil {
		return nil, stats, err
	}
	if err := surfaceJobErrors("cluster", b.results, b.errs, b.failed); err != nil {
		return nil, stats, err
	}
	return b.results, stats, nil
}

// openJournal wires the batch to the configured checkpoint journal (no-op
// without WithClusterJournal). On resume, recovered entries are written
// straight into the batch's result slots and reported in the returned set;
// the caller keeps them off the queue.
func (c *Cluster) openJournal(b *clusterBatch, n int) (recovered map[int]bool, err error) {
	if c.journalPath == "" {
		return nil, nil
	}
	h := journal.Header{
		Task:      b.task,
		ParamsSHA: journal.ParamsDigest(b.params),
		Seed:      b.seed,
		Jobs:      n,
	}
	if !c.resume {
		j, err := journal.Create(c.journalPath, h, c.journalEvery)
		if err != nil {
			return nil, fmt.Errorf("engine: cluster backend: %w", err)
		}
		b.jnl = j
		return nil, nil
	}
	j, entries, err := journal.Resume(c.journalPath, h, c.journalEvery)
	if err != nil {
		return nil, fmt.Errorf("engine: cluster backend: %w", err)
	}
	b.jnl = j
	recovered = make(map[int]bool, len(entries))
	for _, e := range entries {
		if e.Failed {
			b.errs[e.Job] = e.Error
			b.failed[e.Job] = true
		} else {
			b.results[e.Job] = e.Value
		}
		recovered[e.Job] = true
	}
	if len(entries) > 0 {
		mResumedJobs.Add(uint64(len(entries)))
		obs.Emit("resume", b.task, int64(len(entries)), int64(n), 0)
	}
	return recovered, nil
}

// dispatch runs the batch to completion: a membership watcher starts one
// sender per capable peer — current members and any that join mid-batch —
// and aborts only when jobs are unfinished and no capable peer has been
// connected for the whole join-wait. It returns how many distinct peers
// served the batch.
func (c *Cluster) dispatch(b *clusterBatch) (workers int, err error) {
	var wg sync.WaitGroup
	defer wg.Wait()
	var active atomic.Int64
	seen := map[int64]bool{}
	// The join-wait clock measures accumulated UNPRODUCTIVE idle time: it
	// runs while no capable worker is connected, pauses (without resetting)
	// while one is, and only a completed job resets it. A worker crash-loop
	// — join, die before finishing anything, rejoin — therefore burns the
	// budget instead of renewing it: before this accounting, every flap
	// reset the clock and a zero-progress batch could wait forever.
	var idleAccum time.Duration
	var idleStart time.Time // non-zero while the clock is running
	progressMark := b.pending.Load()
	for {
		// Fetch the change channel BEFORE snapshotting: a membership change
		// landing in between closes the channel we already hold, so the
		// wakeup cannot be lost.
		changed := c.reg.Changed()
		for _, m := range c.reg.Members() {
			if seen[m.ID] {
				continue
			}
			seen[m.ID] = true
			if !m.Has(b.task) {
				// Not a candidate — but say so: a cluster whose only
				// workers serve OTHER tasks (an engineworker joined to a
				// sweep coordinator, say) should fail with "wrong binary",
				// not "no worker ever joined".
				c.noteErr(fmt.Errorf("%s registered without task %q (serves %v — wrong worker binary?)",
					m.Remote, b.task, m.Tasks))
				continue
			}
			c.mu.Lock()
			p := c.peers[m.ID]
			c.mu.Unlock()
			if p == nil {
				continue // left between snapshot and lookup
			}
			workers++
			active.Add(1)
			wg.Add(1)
			go func(p *clusterPeer) {
				defer wg.Done()
				defer b.wakeDispatcher()
				defer active.Add(-1)
				c.runPeer(p, b)
			}(p)
		}

		now := time.Now()
		if p := b.pending.Load(); p < progressMark {
			progressMark = p
			idleAccum = 0
			idleStart = time.Time{}
		}
		var timeoutC <-chan time.Time
		if active.Load() > 0 {
			if !idleStart.IsZero() {
				idleAccum += now.Sub(idleStart)
				idleStart = time.Time{}
			}
		} else {
			if idleStart.IsZero() {
				idleStart = now
			}
			wait := c.joinWait - idleAccum - now.Sub(idleStart)
			if wait <= 0 {
				return workers, c.transportErr(b)
			}
			timeoutC = time.After(wait)
		}

		select {
		case <-b.done:
			return workers, nil
		case <-changed:
		case <-b.peerExit:
		case <-timeoutC:
		case <-c.closed:
			return workers, fmt.Errorf("engine: cluster backend closed with %d of %d jobs unfinished",
				b.pending.Load(), len(b.results))
		}
	}
}

// transportErr builds the all-workers-gone batch failure.
func (c *Cluster) transportErr(b *clusterBatch) error {
	c.errMu.Lock()
	last := c.lastErr
	c.errMu.Unlock()
	msg := fmt.Sprintf("engine: cluster backend: %d of %d jobs unfinished with no worker serving task %q for %v",
		b.pending.Load(), len(b.results), b.task, c.joinWait)
	if last != nil {
		return fmt.Errorf("%s; last worker trouble: %w", msg, last)
	}
	return errors.New(msg + "; no worker ever joined")
}

// runPeer streams jobs to one peer with up to c.window outstanding: take a
// job off the queue, acquire a window credit (freed when the job's result
// arrives), send the frame, repeat — no waiting for results in between.
// It returns when the batch completes (queue closed) or the peer leaves; a
// job it could not place comes straight back on the queue, and the leave
// path requeues everything the peer still held.
func (c *Cluster) runPeer(p *clusterPeer, b *clusterBatch) {
	gone := p.attach(b, c.window)
	defer p.detach()
	for {
		var job int
		var ok bool
		select {
		case job, ok = <-b.queue:
			if !ok {
				return // batch complete
			}
		case <-gone:
			return
		}
		// Acquire a window credit, watching for departure so the sender
		// never waits on a dead peer's never-coming results.
		select {
		case p.window <- struct{}{}:
		case <-gone:
			b.requeue([]int{job})
			return
		}
		if !p.claim(job) {
			b.requeue([]int{job})
			return
		}
		if err := p.send(&wireMsg{
			Type:   wireJob,
			Job:    job,
			Task:   b.task,
			Params: b.params,
			Seed:   JobSeed(b.seed, job),
		}); err == nil {
			obs.Emit("dispatch", p.remote, int64(job), 0, 0)
		} else {
			// Sever the transport so cleanup funnels through the single
			// leave path: the failed connection's reader exits, leave()
			// requeues the just-claimed job with everything else in flight,
			// and only then (gone closed) may detach run — returning before
			// that would let the deferred detach discard the in-flight set
			// leave is about to requeue.
			c.noteErr(fmt.Errorf("%s: sending job %d: %w", p.remote, job, err))
			p.conn.Close()
			<-gone
			return
		}
	}
}
