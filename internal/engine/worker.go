package engine

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"github.com/multiradio/chanalloc/internal/des"
)

// WorkerEnv is the environment marker that switches a re-exec'd binary into
// engine-worker mode: when set (to any non-empty value), the process serves
// task jobs over stdin/stdout instead of running its normal main. Host
// programs opt in by calling RunWorkerIfRequested before doing anything
// else; the Process backend sets the marker when it spawns shards.
const WorkerEnv = "CHANALLOC_ENGINE_WORKER"

// Wire frame kinds of the coordinator<->worker protocol. Every frame is one
// JSON object on one line (the newline-delimited JSON idiom of
// internal/dist); unknown fields are ignored so the protocol can grow.
const (
	wireHello     = "hello"     // both directions: version/task handshake (socket transport)
	wireJob       = "job"       // coordinator -> worker: one task job to run
	wireResult    = "result"    // worker -> coordinator: the job's value or error
	wireRegister  = "register"  // worker -> coordinator: cluster membership registration
	wireHeartbeat = "heartbeat" // worker -> coordinator: cluster liveness beacon
)

// wireMsg is the single frame type of the worker protocol; fields are
// populated according to Type.
//
// Seed deliberately has no omitempty: a job's seed is semantically
// load-bearing for every value including zero (JobSeed can return 0), and
// eliding it would make "seed absent" and "seed 0" indistinguishable to a
// version-skewed peer. The frame bytes are pinned in protocol tests.
type wireMsg struct {
	Type string `json:"type"`
	// job and result
	Job int `json:"job"`
	// job (Task doubles as the required-task announcement of a hello)
	Task   string          `json:"task,omitempty"`
	Params json.RawMessage `json:"params,omitempty"`
	Seed   uint64          `json:"seed"`
	// result (Error doubles as the rejection reason of a hello reply)
	Value json.RawMessage `json:"value,omitempty"`
	Error string          `json:"error,omitempty"`
	// hello and register
	Version int      `json:"version,omitempty"`
	Tasks   []string `json:"tasks,omitempty"`
	// hello and register: shared-secret auth. Purely additive: both ends
	// default to no token, and a mismatch is a loud handshake rejection.
	Token string `json:"token,omitempty"`
	// hello reply to a register: the heartbeat cadence the coordinator
	// expects, in milliseconds (0 leaves the worker's default in place).
	HeartbeatMillis int `json:"heartbeat_ms,omitempty"`
}

// RunWorkerIfRequested turns the current process into an engine worker when
// WorkerEnv is set: it serves jobs on stdin/stdout until the coordinator
// closes the pipe, then exits. Call it first thing in main (after task
// registrations, which conventionally live in init functions) — it does
// nothing and returns immediately in a normal run.
func RunWorkerIfRequested() {
	if os.Getenv(WorkerEnv) == "" {
		return
	}
	if err := ServeWorker(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "engine worker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// ServeWorker runs the worker end of the protocol: decode one job frame,
// run the named registered task with a PRNG seeded by the frame's seed
// (derived by the coordinator as JobSeed(root, job)), reply with the
// JSON-encoded value or the error text, repeat until EOF. Job failures are
// replies, not transport failures — the worker keeps serving, which is what
// lets a batch run every job even when some fail, exactly like the
// in-process pool.
func ServeWorker(r io.Reader, w io.Writer) error {
	return serveWorker(json.NewDecoder(r), json.NewEncoder(w))
}

// serveWorker is ServeWorker with the framing already built — the socket
// listener hands in the handshake's decoder so bytes it buffered ahead are
// not lost.
func serveWorker(dec *json.Decoder, enc *json.Encoder) error {
	for {
		var m wireMsg
		if err := dec.Decode(&m); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("decoding job frame: %w", err)
		}
		if m.Type != wireJob {
			return fmt.Errorf("unexpected frame %q, want %q", m.Type, wireJob)
		}
		reply := executeJob(&m)
		if err := enc.Encode(reply); err != nil {
			return fmt.Errorf("sending result for job %d: %w", m.Job, err)
		}
	}
}

// executeJob runs one job frame against the process-global task registry
// and builds its result frame. Job failures are replies, never transport
// failures — shared by the stdio/socket worker loop and the cluster
// worker's pipelined executor.
func executeJob(m *wireMsg) *wireMsg {
	reply := &wireMsg{Type: wireResult, Job: m.Job}
	if fn, ok := taskByName(m.Task); !ok {
		reply.Error = fmt.Sprintf("unknown task %q (registered: %v)", m.Task, TaskNames())
	} else if out, err := fn(m.Params, m.Job, des.NewRNG(m.Seed)); err != nil {
		reply.Error = err.Error()
	} else if value, err := json.Marshal(out); err != nil {
		reply.Error = fmt.Sprintf("encoding result: %v", err)
	} else {
		reply.Value = value
	}
	return reply
}
