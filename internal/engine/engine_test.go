package engine

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"github.com/multiradio/chanalloc/internal/des"
)

// drawBatch runs a batch whose jobs consume their PRNG stream; the result
// digests are what the determinism tests compare across pool sizes.
func drawBatch(t *testing.T, workers int) ([]uint64, Stats) {
	t.Helper()
	out, stats, err := Map(64, func(job int, rng *des.RNG) (uint64, error) {
		var acc uint64
		for i := 0; i <= job%7; i++ {
			acc = acc*31 + rng.Uint64()
		}
		return acc, nil
	}, Workers(workers), Seed(42))
	if err != nil {
		t.Fatal(err)
	}
	return out, stats
}

// TestMapDeterministicAcrossWorkerCounts is the engine's core contract:
// identical output for 1, 4 and NumCPU workers.
func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	base, _ := drawBatch(t, 1)
	for _, workers := range []int{2, 4, runtime.NumCPU()} {
		got, stats := drawBatch(t, workers)
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("workers=%d changed results", workers)
		}
		if want := min(workers, 64); stats.Workers != want {
			t.Fatalf("workers=%d: stats report %d", workers, stats.Workers)
		}
	}
}

// TestMapOrdersResults checks fan-in keeps job order regardless of which
// worker finishes first.
func TestMapOrdersResults(t *testing.T) {
	out, _, err := Map(100, func(job int, rng *des.RNG) (int, error) {
		return job * job, nil
	}, Workers(8))
	if err != nil {
		t.Fatal(err)
	}
	for job, v := range out {
		if v != job*job {
			t.Fatalf("job %d result %d out of order", job, v)
		}
	}
}

// TestJobSeedIndependentOfWorkers pins the stream derivation: it must only
// depend on (root, job).
func TestJobSeedIndependentOfWorkers(t *testing.T) {
	seen := map[uint64]bool{}
	for job := 0; job < 1000; job++ {
		s := JobSeed(7, job)
		if seen[s] {
			t.Fatalf("job %d collides with an earlier stream seed", job)
		}
		seen[s] = true
	}
	if JobSeed(1, 0) == JobSeed(2, 0) {
		t.Fatal("different roots must give different streams")
	}
}

// TestMapError propagates the failure of the lowest-indexed failing job —
// the same one for every worker count, like everything else about a batch.
func TestMapError(t *testing.T) {
	for _, workers := range []int{1, 4, runtime.NumCPU()} {
		_, _, err := Map(32, func(job int, rng *des.RNG) (int, error) {
			if job%5 == 3 {
				return 0, fmt.Errorf("job %d boom", job)
			}
			return job, nil
		}, Workers(workers))
		if err == nil {
			t.Fatal("expected an error")
		}
		if got := err.Error(); got != "engine: job 3: job 3 boom" {
			t.Fatalf("workers=%d: error %q, want the lowest-indexed failure", workers, got)
		}
	}
}

// TestMapEdgeCases covers empty batches and invalid input.
func TestMapEdgeCases(t *testing.T) {
	out, stats, err := Map(0, func(job int, rng *des.RNG) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 || stats.Jobs != 0 {
		t.Fatalf("empty batch: out=%v stats=%+v err=%v", out, stats, err)
	}
	if _, _, err := Map[int](3, nil); err == nil {
		t.Fatal("nil fn accepted")
	}
	if _, _, err := Map(-1, func(job int, rng *des.RNG) (int, error) { return 0, nil }); err == nil {
		t.Fatal("negative job count accepted")
	}
}

// TestWorkersOptionEdgeCases pins the pool-sizing contract: workers < 1
// (explicitly or by default) means NumCPU, and the pool never exceeds the
// job count.
func TestWorkersOptionEdgeCases(t *testing.T) {
	big := 4 * runtime.NumCPU()
	for _, workers := range []int{0, -1, -100} {
		_, stats, err := Map(big, func(job int, rng *des.RNG) (int, error) {
			return job, nil
		}, Workers(workers))
		if err != nil {
			t.Fatal(err)
		}
		if stats.Workers != runtime.NumCPU() {
			t.Fatalf("Workers(%d): pool size %d, want NumCPU=%d",
				workers, stats.Workers, runtime.NumCPU())
		}
	}
	// Default (no option) is NumCPU too.
	_, stats, err := Map(big, func(job int, rng *des.RNG) (int, error) { return job, nil })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Workers != runtime.NumCPU() {
		t.Fatalf("default pool size %d, want NumCPU=%d", stats.Workers, runtime.NumCPU())
	}
	// A pool larger than the batch clamps to the job count.
	_, stats, err = Map(3, func(job int, rng *des.RNG) (int, error) { return job, nil }, Workers(64))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Workers != 3 {
		t.Fatalf("pool size %d for 3 jobs, want 3", stats.Workers)
	}
}

// TestZeroJobsEdgeCases: an empty batch succeeds with empty (non-nil)
// results and a zero-worker stats report, for Map, ForEach and option
// combinations alike.
func TestZeroJobsEdgeCases(t *testing.T) {
	out, stats, err := Map(0, func(job int, rng *des.RNG) (int, error) {
		t.Error("job function must not run for an empty batch")
		return 0, nil
	}, Workers(-2), Seed(99))
	if err != nil {
		t.Fatal(err)
	}
	if out == nil || len(out) != 0 {
		t.Fatalf("want empty non-nil results, got %v", out)
	}
	if stats.Workers != 0 || stats.Jobs != 0 || len(stats.JobTimes) != 0 {
		t.Fatalf("empty-batch stats %+v", stats)
	}
	if stats.TotalJobTime() != 0 {
		t.Fatalf("empty batch accumulated job time %v", stats.TotalJobTime())
	}
	fstats, err := ForEach(0, func(job int, rng *des.RNG) error { return nil })
	if err != nil || fstats.Jobs != 0 {
		t.Fatalf("ForEach empty batch: stats=%+v err=%v", fstats, err)
	}
}

// TestForEach checks the no-result wrapper visits every job exactly once.
// Run with -race this also exercises the pool's synchronisation.
func TestForEach(t *testing.T) {
	visits := make([]int, 200)
	stats, err := ForEach(len(visits), func(job int, rng *des.RNG) error {
		visits[job]++ // distinct indices: safe across workers
		return nil
	}, Workers(runtime.NumCPU()))
	if err != nil {
		t.Fatal(err)
	}
	for job, v := range visits {
		if v != 1 {
			t.Fatalf("job %d visited %d times", job, v)
		}
	}
	if stats.TotalJobTime() < 0 || len(stats.JobTimes) != len(visits) {
		t.Fatalf("bad timing stats: %+v", stats)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
