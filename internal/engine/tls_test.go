package engine

import (
	"crypto/tls"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// writeTestCert mints a self-signed cert for hosts over [notBefore,
// notAfter] and writes the PEM pair to files, returning their paths.
func writeTestCert(t *testing.T, hosts []string, notBefore, notAfter time.Time) (certFile, keyFile string) {
	t.Helper()
	certPEM, keyPEM, err := GenerateSelfSignedCert(hosts, notBefore, notAfter)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	certFile = filepath.Join(dir, "cert.pem")
	keyFile = filepath.Join(dir, "key.pem")
	if err := os.WriteFile(certFile, certPEM, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(keyFile, keyPEM, 0o600); err != nil {
		t.Fatal(err)
	}
	return certFile, keyFile
}

// testTLSPair builds a matched server/client config pair for loopback: the
// self-signed cert doubles as the client's CA root.
func testTLSPair(t *testing.T) (server, client *tls.Config) {
	t.Helper()
	now := time.Now()
	certFile, keyFile := writeTestCert(t, []string{"127.0.0.1"}, now.Add(-time.Hour), now.Add(time.Hour))
	server, err := ServerTLSConfig(certFile, keyFile)
	if err != nil {
		t.Fatal(err)
	}
	client, err = ClientTLSConfig(certFile, false)
	if err != nil {
		t.Fatal(err)
	}
	return server, client
}

// startServeTLS runs a TLS worker listener serving the test binary's
// registered tasks, returning its dial address.
func startServeTLS(t *testing.T, srvCfg *tls.Config) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); Serve(lis, WithServeTLS(srvCfg)) }()
	t.Cleanup(func() { lis.Close(); <-done })
	return lis.Addr().String()
}

// startTLSCluster mirrors startCluster with TLS on the coordinator listener
// and every joining worker's dial.
func startTLSCluster(t *testing.T, workers int, srvCfg, cliCfg *tls.Config, opts ...ClusterOption) *Cluster {
	t.Helper()
	c, err := NewCluster("127.0.0.1:0",
		append([]ClusterOption{WithJoinWait(10 * time.Second), WithClusterTLS(srvCfg)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := JoinAndServe(c.Addr(), WithJoinStop(stop),
				WithJoinRetryWait(10*time.Millisecond), WithJoinTLS(cliCfg))
			if err != nil {
				t.Errorf("worker join: %v", err)
			}
		}()
	}
	t.Cleanup(func() {
		close(stop)
		c.Close()
		wg.Wait()
	})
	deadline := time.Now().Add(5 * time.Second)
	for c.reg.Len() < workers && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if c.reg.Len() < workers {
		t.Fatalf("only %d of %d workers joined", c.reg.Len(), workers)
	}
	return c
}

// TestServerTLSConfigValidation: cert and key must come together, and the
// pair must actually load.
func TestServerTLSConfigValidation(t *testing.T) {
	if _, err := ServerTLSConfig("cert.pem", ""); err == nil {
		t.Fatal("cert without key accepted")
	}
	if _, err := ServerTLSConfig("", "key.pem"); err == nil {
		t.Fatal("key without cert accepted")
	}
	if _, err := ServerTLSConfig("/nonexistent/cert.pem", "/nonexistent/key.pem"); err == nil {
		t.Fatal("unloadable pair accepted")
	}
}

// TestClientTLSConfigValidation: a missing or certificate-free CA bundle is
// a loud configuration error.
func TestClientTLSConfigValidation(t *testing.T) {
	if _, err := ClientTLSConfig("/nonexistent/ca.pem", false); err == nil {
		t.Fatal("missing CA bundle accepted")
	}
	empty := filepath.Join(t.TempDir(), "empty.pem")
	if err := os.WriteFile(empty, []byte("not a pem"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ClientTLSConfig(empty, false); err == nil {
		t.Fatal("certificate-free bundle accepted")
	}
	cfg, err := ClientTLSConfig("", true)
	if err != nil || !cfg.InsecureSkipVerify {
		t.Fatalf("skip-verify config: %+v, err=%v", cfg, err)
	}
}

// TestTLSSocketRoundTrip: a full batch over a TLS socket worker matches the
// in-process backend byte for byte (the frame bytes are unchanged — TLS sits
// under the JSON framing).
func TestTLSSocketRoundTrip(t *testing.T) {
	srvCfg, cliCfg := testTLSPair(t)
	addr := startServeTLS(t, srvCfg)
	params := []byte(`{"mul":31,"label":"tls"}`)
	want, _, err := NewInProcess().RunTask("conformance/draw", params, 11, Seed(9))
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := NewSocketWith([]string{addr}, WithSocketTLS(cliCfg)).
		RunTask("conformance/draw", params, 11, Seed(9))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Jobs != 11 {
		t.Fatalf("stats %+v", stats)
	}
	for job := range want {
		if string(want[job]) != string(got[job]) {
			t.Fatalf("job %d: %s (plain) vs %s (tls)", job, want[job], got[job])
		}
	}
}

// TestTLSBadCA: a dialer verifying against the WRONG root must fail the
// handshake at dial time, naming the address and the likely cause.
func TestTLSBadCA(t *testing.T) {
	srvCfg, _ := testTLSPair(t)
	_, wrongCA := testTLSPair(t) // a different self-signed root
	addr := startServeTLS(t, srvCfg)
	_, _, err := NewSocketWith([]string{addr}, WithSocketTLS(wrongCA)).
		RunTask("conformance/draw", []byte(`{"mul":1}`), 3, Seed(1))
	if err == nil {
		t.Fatal("wrong CA verified")
	}
	if !strings.Contains(err.Error(), "TLS handshake with") {
		t.Fatalf("error %q does not name the TLS handshake", err)
	}
}

// TestTLSExpiredCert: a certificate past its notAfter fails verification.
func TestTLSExpiredCert(t *testing.T) {
	now := time.Now()
	certFile, keyFile := writeTestCert(t, []string{"127.0.0.1"},
		now.Add(-2*time.Hour), now.Add(-time.Hour))
	srvCfg, err := ServerTLSConfig(certFile, keyFile)
	if err != nil {
		t.Fatal(err)
	}
	cliCfg, err := ClientTLSConfig(certFile, false)
	if err != nil {
		t.Fatal(err)
	}
	addr := startServeTLS(t, srvCfg)
	_, _, err = NewSocketWith([]string{addr}, WithSocketTLS(cliCfg)).
		RunTask("conformance/draw", []byte(`{"mul":1}`), 3, Seed(1))
	if err == nil {
		t.Fatal("expired certificate verified")
	}
	if !strings.Contains(err.Error(), "TLS handshake with") {
		t.Fatalf("error %q does not name the TLS handshake", err)
	}
	// Skip-verify still connects to the expired cert — encryption without
	// verification, the test-only escape hatch.
	skip, err := ClientTLSConfig("", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := NewSocketWith([]string{addr}, WithSocketTLS(skip)).
		RunTask("conformance/draw", []byte(`{"mul":1}`), 3, Seed(1)); err != nil {
		t.Fatalf("skip-verify dial failed: %v", err)
	}
}

// TestPlainDialsTLS: a plain coordinator dialing a TLS worker dies on the
// first exchange with a hint that the two ends disagree about TLS.
func TestPlainDialsTLS(t *testing.T) {
	srvCfg, _ := testTLSPair(t)
	addr := startServeTLS(t, srvCfg)
	_, _, err := NewSocket(addr).RunTask("conformance/draw", []byte(`{"mul":1}`), 3, Seed(1))
	if err == nil {
		t.Fatal("plain dial of a TLS listener succeeded")
	}
	if !strings.Contains(err.Error(), "TLS-expecting") {
		t.Fatalf("error %q lacks the TLS-skew hint", err)
	}
}

// TestTLSDialsPlain: the reverse skew — a TLS dialer hitting a plain
// listener — fails the handshake at dial time.
func TestTLSDialsPlain(t *testing.T) {
	_, cliCfg := testTLSPair(t)
	addr := startServe(t, "tcp", "127.0.0.1:0")
	_, _, err := NewSocketWith([]string{addr}, WithSocketTLS(cliCfg)).
		RunTask("conformance/draw", []byte(`{"mul":1}`), 3, Seed(1))
	if err == nil {
		t.Fatal("TLS dial of a plain listener succeeded")
	}
	if !strings.Contains(err.Error(), "TLS handshake with") {
		t.Fatalf("error %q does not name the TLS handshake", err)
	}
}

// TestTLSClusterJoinBadCA: the cluster join path surfaces handshake failures
// the same way (and the register handshake hint mentions TLS when a plain
// worker dials a TLS coordinator).
func TestTLSClusterJoinBadCA(t *testing.T) {
	srvCfg, _ := testTLSPair(t)
	_, wrongCA := testTLSPair(t)
	c, err := NewCluster("127.0.0.1:0", WithClusterTLS(srvCfg), WithJoinWait(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = JoinAndServe(c.Addr(), WithJoinTLS(wrongCA), WithJoinRetryWait(time.Millisecond),
		WithJoinAttempts(2))
	if err == nil {
		t.Fatal("wrong CA joined the cluster")
	}
	if !strings.Contains(err.Error(), "TLS handshake with") {
		t.Fatalf("error %q does not name the TLS handshake", err)
	}
}

// TestGenerateSelfSignedCertValidation: no hosts is an error; IP and DNS
// hosts both land in the SANs (verified implicitly by the loopback tests).
func TestGenerateSelfSignedCertValidation(t *testing.T) {
	if _, _, err := GenerateSelfSignedCert(nil, time.Now(), time.Now().Add(time.Hour)); err == nil {
		t.Fatal("certificate with no hosts generated")
	}
	certPEM, keyPEM, err := GenerateSelfSignedCert([]string{"localhost", "127.0.0.1"},
		time.Now().Add(-time.Hour), time.Now().Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tls.X509KeyPair(certPEM, keyPEM); err != nil {
		t.Fatalf("generated pair does not load: %v", err)
	}
}
