package engine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"github.com/multiradio/chanalloc/internal/des"
)

// TestMain lets the test binary double as the worker binary: when the
// Process backend re-execs it with WorkerEnv set, it serves jobs instead of
// running tests. Task registrations live in init functions, so they are in
// place for both roles.
func TestMain(m *testing.M) {
	RunWorkerIfRequested()
	os.Exit(m.Run())
}

// confParams parameterises the conformance tasks.
type confParams struct {
	Mul   uint64 `json:"mul"`
	Label string `json:"label"`
}

// confResult is what the conformance tasks produce per job.
type confResult struct {
	Job   int    `json:"job"`
	Acc   uint64 `json:"acc"`
	Label string `json:"label"`
}

func init() {
	// conformance/draw consumes a job-dependent amount of the PRNG stream —
	// the digest only matches across backends if seeds derive from
	// (root, job) alone.
	MustRegisterTask("conformance/draw", func(params json.RawMessage, job int, rng *des.RNG) (any, error) {
		var p confParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, err
		}
		var acc uint64
		for i := 0; i <= job%7; i++ {
			acc = acc*p.Mul + rng.Uint64()
		}
		return confResult{Job: job, Acc: acc, Label: p.Label}, nil
	})
	// conformance/fail errors on every job with index ≡ 3 (mod 5); the
	// batch must surface job 3's error on every backend, worded identically.
	MustRegisterTask("conformance/fail", func(params json.RawMessage, job int, rng *des.RNG) (any, error) {
		if job%5 == 3 {
			return nil, fmt.Errorf("job %d boom", job)
		}
		return confResult{Job: job}, nil
	})
}

// conformanceBackends enumerates every backend implementation with a few
// pool/shard/peer shapes each. Process shapes stay small (each entry spawns
// that many subprocesses); socket shapes run the real worker loop — Serve
// with handshake — over loopback TCP and a unix socket, with the test
// process serving its own registered tasks; cluster shapes run the real
// membership path — register handshake, heartbeats, pipelined windowed
// dispatch — with JoinAndServe workers dialing a loopback coordinator.
func conformanceBackends(t *testing.T) []struct {
	desc    string
	backend Backend
	opts    []Option
} {
	t.Helper()
	tcp1 := startServe(t, "tcp", "127.0.0.1:0")
	tcp2 := startServe(t, "tcp", "127.0.0.1:0")
	unix := startServe(t, "unix", t.TempDir()+"/worker.sock")
	tlsSrv, tlsCli := testTLSPair(t)
	tcpTLS := startServeTLS(t, tlsSrv)
	return []struct {
		desc    string
		backend Backend
		opts    []Option
	}{
		{"inprocess/workers=1", NewInProcess(), []Option{Workers(1)}},
		{"inprocess/workers=4", NewInProcess(), []Option{Workers(4)}},
		{"process/shards=1", NewProcess(1), nil},
		{"process/shards=3", NewProcess(3), nil},
		{"socket/peers=1", NewSocket(tcp1), nil},
		// Three connections across two listeners: the same endpoint serving
		// several peers concurrently must not show in the results.
		{"socket/peers=3", NewSocket(tcp1, tcp2, tcp1), nil},
		{"socket/unix", NewSocket(unix), nil},
		// TLS under the framing: the conformance digest is the proof the
		// frame bytes never changed.
		{"socket/tls", NewSocketWith([]string{tcpTLS}, WithSocketTLS(tlsCli)), nil},
		// Every pinned window size: lock-step (1), moderate (4) and deeper
		// than most batches (32). Neither the window nor the worker count
		// may show in the results.
		{"cluster/window=1", startCluster(t, 1, WithClusterWindow(1)), nil},
		{"cluster/window=4/workers=2", startCluster(t, 2, WithClusterWindow(4)), nil},
		{"cluster/window=32", startCluster(t, 1, WithClusterWindow(32)), nil},
		{"cluster/tls", startTLSCluster(t, 2, tlsSrv, tlsCli, WithClusterWindow(4)), nil},
	}
}

// startCluster runs a loopback cluster coordinator with `workers` in-test
// JoinAndServe workers dialed in and registered; the backend is torn down
// with the test.
func startCluster(t *testing.T, workers int, opts ...ClusterOption) *Cluster {
	t.Helper()
	c, err := NewCluster("127.0.0.1:0",
		append([]ClusterOption{WithJoinWait(10 * time.Second)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := JoinAndServe(c.Addr(), WithJoinStop(stop), WithJoinRetryWait(10*time.Millisecond)); err != nil {
				t.Errorf("worker join: %v", err)
			}
		}()
	}
	t.Cleanup(func() {
		close(stop)
		c.Close()
		wg.Wait()
	})
	// Batches tolerate joining workers mid-batch, but waiting here keeps
	// the conformance shapes honest about their advertised worker counts.
	deadline := time.Now().Add(5 * time.Second)
	for c.reg.Len() < workers && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if c.reg.Len() < workers {
		t.Fatalf("only %d of %d workers joined", c.reg.Len(), workers)
	}
	return c
}

// TestBackendConformanceResults is the Backend contract: for a fixed root
// seed, every backend produces byte-identical JSON results.
func TestBackendConformanceResults(t *testing.T) {
	const n = 23
	params, err := json.Marshal(confParams{Mul: 31, Label: "conf"})
	if err != nil {
		t.Fatal(err)
	}
	var base []json.RawMessage
	var baseDesc string
	for _, bc := range conformanceBackends(t) {
		t.Run(bc.desc, func(t *testing.T) {
			got, stats, err := bc.backend.RunTask("conformance/draw", params, n,
				append(bc.opts, Seed(42))...)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != n || stats.Jobs != n {
				t.Fatalf("got %d results, stats %+v, want %d jobs", len(got), stats, n)
			}
			if base == nil {
				base, baseDesc = got, bc.desc
				return
			}
			for job := range got {
				if !bytes.Equal(base[job], got[job]) {
					t.Fatalf("job %d differs from %s:\n%s\nvs\n%s",
						job, baseDesc, base[job], got[job])
				}
			}
		})
	}
}

// TestBackendConformanceError pins the failure contract: every backend
// surfaces the lowest-indexed failing job's error, worded identically, with
// nil results.
func TestBackendConformanceError(t *testing.T) {
	const want = "engine: job 3: job 3 boom"
	for _, bc := range conformanceBackends(t) {
		t.Run(bc.desc, func(t *testing.T) {
			got, _, err := bc.backend.RunTask("conformance/fail", []byte("{}"), 17,
				append(bc.opts, Seed(42))...)
			if err == nil {
				t.Fatal("expected an error")
			}
			if err.Error() != want {
				t.Fatalf("error %q, want %q", err.Error(), want)
			}
			if got != nil {
				t.Fatalf("results must be nil on failure, got %v", got)
			}
		})
	}
}

// TestBackendConformanceUnknownTask: resolving an unregistered task fails
// the same way on every backend, before any work is dispatched.
func TestBackendConformanceUnknownTask(t *testing.T) {
	for _, bc := range conformanceBackends(t) {
		t.Run(bc.desc, func(t *testing.T) {
			if _, _, err := bc.backend.RunTask("conformance/nope", nil, 3, bc.opts...); err == nil {
				t.Fatal("unknown task should error")
			}
		})
	}
}

// TestBackendConformanceEmptyBatch: zero jobs succeed with empty results on
// every backend.
func TestBackendConformanceEmptyBatch(t *testing.T) {
	for _, bc := range conformanceBackends(t) {
		t.Run(bc.desc, func(t *testing.T) {
			got, stats, err := bc.backend.RunTask("conformance/draw", []byte(`{"mul":1}`), 0, bc.opts...)
			if err != nil || len(got) != 0 || got == nil || stats.Workers != 0 {
				t.Fatalf("empty batch: got=%v stats=%+v err=%v", got, stats, err)
			}
		})
	}
}

// TestRunTaskTyped exercises the typed helper end to end on both backends,
// including that process results decode into the same structs the
// in-process pool yields.
func TestRunTaskTyped(t *testing.T) {
	const n = 9
	want, _, err := RunTask[confResult](NewInProcess(), "conformance/draw",
		confParams{Mul: 31, Label: "typed"}, n, Seed(7), Workers(2))
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := RunTask[confResult](NewProcess(2), "conformance/draw",
		confParams{Mul: 31, Label: "typed"}, n, Seed(7))
	if err != nil {
		t.Fatal(err)
	}
	for job := range want {
		if want[job] != got[job] {
			t.Fatalf("job %d: inprocess %+v, process %+v", job, want[job], got[job])
		}
		if want[job].Job != job || want[job].Label != "typed" {
			t.Fatalf("job %d carries wrong identity: %+v", job, want[job])
		}
	}
	if _, _, err := RunTask[confResult](nil, "conformance/draw", nil, 1); err == nil {
		t.Fatal("nil backend should error")
	}
	if _, _, err := RunTask[confResult](NewInProcess(), "conformance/draw",
		make(chan int), 1); err == nil {
		t.Fatal("unencodable params should error")
	}
}

// TestProcessBackendMatchesMap pins the tentpole guarantee at the Map
// surface: engine.Map over the in-process pool and the multi-process
// backend running the same task produce byte-identical results for a fixed
// root seed.
func TestProcessBackendMatchesMap(t *testing.T) {
	const n, root = 23, 42
	params := confParams{Mul: 31, Label: "conf"}
	// The task body, run directly through Map (the closure path).
	fromMap, _, err := Map(n, func(job int, rng *des.RNG) (confResult, error) {
		var acc uint64
		for i := 0; i <= job%7; i++ {
			acc = acc*params.Mul + rng.Uint64()
		}
		return confResult{Job: job, Acc: acc, Label: params.Label}, nil
	}, Seed(root), Workers(4))
	if err != nil {
		t.Fatal(err)
	}
	fromProcess, _, err := RunTask[confResult](NewProcess(3), "conformance/draw", params, n, Seed(root))
	if err != nil {
		t.Fatal(err)
	}
	for job := range fromMap {
		if fromMap[job] != fromProcess[job] {
			t.Fatalf("job %d: Map %+v, process backend %+v", job, fromMap[job], fromProcess[job])
		}
	}
}
