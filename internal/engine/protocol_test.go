package engine

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestWireFrameBytes pins the exact bytes of every frame kind. The pins are
// the compatibility contract with remote workers: a change here is a wire
// change and needs a ProtocolVersion review. In particular the job frame
// must carry "seed":0 explicitly — a zero seed is a legitimate JobSeed
// value, and eliding it (the old omitempty) made "seed absent" and "seed 0"
// indistinguishable to a version-skewed peer.
func TestWireFrameBytes(t *testing.T) {
	for _, tc := range []struct {
		desc string
		msg  wireMsg
		want string
	}{
		{
			"job frame with zero seed",
			wireMsg{Type: wireJob, Job: 0, Task: "t", Params: json.RawMessage(`{"p":1}`), Seed: 0},
			`{"type":"job","job":0,"task":"t","params":{"p":1},"seed":0}`,
		},
		{
			"job frame with nonzero seed",
			wireMsg{Type: wireJob, Job: 7, Task: "t", Seed: 12345},
			`{"type":"job","job":7,"task":"t","seed":12345}`,
		},
		{
			"result frame with value",
			wireMsg{Type: wireResult, Job: 3, Value: json.RawMessage(`{"x":2}`)},
			`{"type":"result","job":3,"seed":0,"value":{"x":2}}`,
		},
		{
			"result frame with job error",
			wireMsg{Type: wireResult, Job: 4, Error: "boom"},
			`{"type":"result","job":4,"seed":0,"error":"boom"}`,
		},
		{
			"hello frame",
			wireMsg{Type: wireHello, Version: ProtocolVersion, Task: "t"},
			`{"type":"hello","job":0,"task":"t","seed":0,"version":1}`,
		},
		{
			"hello reply",
			wireMsg{Type: wireHello, Version: ProtocolVersion, Tasks: []string{"a", "b"}},
			`{"type":"hello","job":0,"seed":0,"version":1,"tasks":["a","b"]}`,
		},
		{
			"hello frame with auth token",
			wireMsg{Type: wireHello, Version: ProtocolVersion, Task: "t", Token: "s3cret"},
			`{"type":"hello","job":0,"task":"t","seed":0,"version":1,"token":"s3cret"}`,
		},
		{
			"register frame",
			wireMsg{Type: wireRegister, Version: ProtocolVersion, Tasks: []string{"a"}, Token: "s3cret"},
			`{"type":"register","job":0,"seed":0,"version":1,"tasks":["a"],"token":"s3cret"}`,
		},
		{
			"register reply with heartbeat cadence",
			wireMsg{Type: wireHello, Version: ProtocolVersion, Tasks: []string{"a"}, HeartbeatMillis: 2000},
			`{"type":"hello","job":0,"seed":0,"version":1,"tasks":["a"],"heartbeat_ms":2000}`,
		},
		{
			"heartbeat frame",
			wireMsg{Type: wireHeartbeat},
			`{"type":"heartbeat","job":0,"seed":0}`,
		},
	} {
		got, err := json.Marshal(&tc.msg)
		if err != nil {
			t.Fatalf("%s: %v", tc.desc, err)
		}
		if string(got) != tc.want {
			t.Errorf("%s:\n got %s\nwant %s", tc.desc, got, tc.want)
		}
	}
}

// TestWireSeedZeroRoundTrips is the decoder side of the omitempty fix: a
// frame carrying seed 0 and a frame built by an old binary that dropped the
// field decode differently only in that the former is explicit on the wire.
func TestWireSeedZeroRoundTrips(t *testing.T) {
	var m wireMsg
	if err := json.Unmarshal([]byte(`{"type":"job","job":1,"task":"t","seed":0}`), &m); err != nil {
		t.Fatal(err)
	}
	if m.Seed != 0 || m.Task != "t" {
		t.Fatalf("decoded %+v", m)
	}
	enc, err := json.Marshal(&m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(enc, []byte(`"seed":0`)) {
		t.Fatalf("re-encoded frame lost the zero seed: %s", enc)
	}
}

// TestHandshake exercises both ends of the hello exchange back to back.
func TestHandshake(t *testing.T) {
	t.Run("accept", func(t *testing.T) {
		client, server := newTestPipes(t)
		srvErr := make(chan error, 1)
		go func() { srvErr <- serverHandshake(server.enc, server.dec, "") }()
		if err := clientHandshake(client.enc, client.dec, "conformance/draw", ""); err != nil {
			t.Fatalf("client: %v", err)
		}
		if err := <-srvErr; err != nil {
			t.Fatalf("server: %v", err)
		}
	})
	t.Run("unknown task rejected", func(t *testing.T) {
		client, server := newTestPipes(t)
		srvErr := make(chan error, 1)
		go func() { srvErr <- serverHandshake(server.enc, server.dec, "") }()
		err := clientHandshake(client.enc, client.dec, "conformance/nope", "")
		if err == nil || !strings.Contains(err.Error(), "unknown task") {
			t.Fatalf("client error %v, want unknown-task rejection", err)
		}
		if err := <-srvErr; err == nil {
			t.Fatal("server should report the rejection")
		}
	})
	t.Run("version skew rejected", func(t *testing.T) {
		client, server := newTestPipes(t)
		srvErr := make(chan error, 1)
		go func() { srvErr <- serverHandshake(server.enc, server.dec, "") }()
		// A future coordinator: same frame, higher version.
		if err := client.enc.Encode(&wireMsg{Type: wireHello, Version: ProtocolVersion + 1}); err != nil {
			t.Fatal(err)
		}
		var reply wireMsg
		if err := client.dec.Decode(&reply); err != nil {
			t.Fatal(err)
		}
		if reply.Error == "" || !strings.Contains(reply.Error, "version mismatch") {
			t.Fatalf("reply %+v, want a version-mismatch rejection", reply)
		}
		if err := <-srvErr; err == nil {
			t.Fatal("server should reject version skew")
		}
	})
	t.Run("matching auth tokens accepted", func(t *testing.T) {
		client, server := newTestPipes(t)
		srvErr := make(chan error, 1)
		go func() { srvErr <- serverHandshake(server.enc, server.dec, "s3cret") }()
		if err := clientHandshake(client.enc, client.dec, "conformance/draw", "s3cret"); err != nil {
			t.Fatalf("client: %v", err)
		}
		if err := <-srvErr; err != nil {
			t.Fatalf("server: %v", err)
		}
	})
	t.Run("auth token mismatch rejected", func(t *testing.T) {
		client, server := newTestPipes(t)
		srvErr := make(chan error, 1)
		go func() { srvErr <- serverHandshake(server.enc, server.dec, "s3cret") }()
		err := clientHandshake(client.enc, client.dec, "conformance/draw", "wrong")
		if err == nil || !strings.Contains(err.Error(), "auth token mismatch") {
			t.Fatalf("client error %v, want auth-token rejection", err)
		}
		if strings.Contains(err.Error(), "s3cret") || strings.Contains(err.Error(), "wrong") {
			t.Fatalf("rejection %v leaks a token value", err)
		}
		if err := <-srvErr; err == nil {
			t.Fatal("server should report the rejection")
		}
	})
	t.Run("token-less coordinator rejected by authenticated worker", func(t *testing.T) {
		client, server := newTestPipes(t)
		srvErr := make(chan error, 1)
		go func() { srvErr <- serverHandshake(server.enc, server.dec, "s3cret") }()
		err := clientHandshake(client.enc, client.dec, "conformance/draw", "")
		if err == nil || !strings.Contains(err.Error(), "auth token mismatch") {
			t.Fatalf("client error %v, want auth-token rejection", err)
		}
		<-srvErr
	})
	t.Run("pre-versioning coordinator rejected", func(t *testing.T) {
		client, server := newTestPipes(t)
		srvErr := make(chan error, 1)
		go func() { srvErr <- serverHandshake(server.enc, server.dec, "") }()
		// An old coordinator speaks jobs immediately, no hello.
		if err := client.enc.Encode(&wireMsg{Type: wireJob, Job: 0, Task: "t"}); err != nil {
			t.Fatal(err)
		}
		var reply wireMsg
		if err := client.dec.Decode(&reply); err != nil {
			t.Fatal(err)
		}
		if reply.Error == "" {
			t.Fatalf("reply %+v, want a rejection", reply)
		}
		if err := <-srvErr; err == nil {
			t.Fatal("server should reject a job before hello")
		}
	})
}

// TestRegisterHandshake exercises both ends of the cluster join exchange —
// the hello handshake with the dialing direction reversed.
func TestRegisterHandshake(t *testing.T) {
	t.Run("accept advertises heartbeat cadence and tasks", func(t *testing.T) {
		client, server := newTestPipes(t)
		type accepted struct {
			tasks []string
			err   error
		}
		srv := make(chan accepted, 1)
		go func() {
			tasks, err := acceptRegistration(server.enc, server.dec, "", 1500*time.Millisecond)
			srv <- accepted{tasks, err}
		}()
		hb, err := registerHandshake(client.enc, client.dec, "")
		if err != nil {
			t.Fatalf("worker: %v", err)
		}
		if hb != 1500*time.Millisecond {
			t.Fatalf("worker adopted heartbeat %v, want 1.5s", hb)
		}
		got := <-srv
		if got.err != nil {
			t.Fatalf("coordinator: %v", got.err)
		}
		// The worker announces its full registry; the conformance tasks are
		// registered in this test binary.
		found := false
		for _, task := range got.tasks {
			if task == "conformance/draw" {
				found = true
			}
		}
		if !found {
			t.Fatalf("registration announced %v, missing conformance/draw", got.tasks)
		}
	})
	t.Run("auth token mismatch rejected", func(t *testing.T) {
		client, server := newTestPipes(t)
		srvErr := make(chan error, 1)
		go func() {
			_, err := acceptRegistration(server.enc, server.dec, "s3cret", time.Second)
			srvErr <- err
		}()
		_, err := registerHandshake(client.enc, client.dec, "wrong")
		if err == nil || !strings.Contains(err.Error(), "auth token mismatch") {
			t.Fatalf("worker error %v, want auth-token rejection", err)
		}
		if err := <-srvErr; err == nil {
			t.Fatal("coordinator should report the rejection")
		}
	})
	t.Run("version skew rejected", func(t *testing.T) {
		client, server := newTestPipes(t)
		srvErr := make(chan error, 1)
		go func() {
			_, err := acceptRegistration(server.enc, server.dec, "", time.Second)
			srvErr <- err
		}()
		// A future worker: same register frame, higher version.
		if err := client.enc.Encode(&wireMsg{Type: wireRegister, Version: ProtocolVersion + 1}); err != nil {
			t.Fatal(err)
		}
		var reply wireMsg
		if err := client.dec.Decode(&reply); err != nil {
			t.Fatal(err)
		}
		if reply.Error == "" || !strings.Contains(reply.Error, "version mismatch") {
			t.Fatalf("reply %+v, want a version-mismatch rejection", reply)
		}
		if err := <-srvErr; err == nil {
			t.Fatal("coordinator should reject version skew")
		}
	})
	t.Run("non-register first frame rejected", func(t *testing.T) {
		client, server := newTestPipes(t)
		srvErr := make(chan error, 1)
		go func() {
			_, err := acceptRegistration(server.enc, server.dec, "", time.Second)
			srvErr <- err
		}()
		if err := client.enc.Encode(&wireMsg{Type: wireJob, Job: 0, Task: "t"}); err != nil {
			t.Fatal(err)
		}
		var reply wireMsg
		if err := client.dec.Decode(&reply); err != nil {
			t.Fatal(err)
		}
		if reply.Error == "" {
			t.Fatalf("reply %+v, want a rejection", reply)
		}
		if err := <-srvErr; err == nil {
			t.Fatal("coordinator should reject a job before register")
		}
	})
}

func TestSplitWorkerAddr(t *testing.T) {
	for _, tc := range []struct {
		in, network, address string
		wantErr              bool
	}{
		{"127.0.0.1:9000", "tcp", "127.0.0.1:9000", false},
		{":9000", "tcp", ":9000", false},
		{"host.example:80", "tcp", "host.example:80", false},
		{"tcp:10.0.0.1:1234", "tcp", "10.0.0.1:1234", false},
		{"unix:/tmp/w.sock", "unix", "/tmp/w.sock", false},
		{"/tmp/w.sock", "unix", "/tmp/w.sock", false},
		{"./w.sock", "unix", "./w.sock", false},
		{"worker.sock", "unix", "worker.sock", false},
		{"", "", "", true},
		{"   ", "", "", true},
	} {
		network, address, err := splitWorkerAddr(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("%q: want error", tc.in)
			}
			continue
		}
		if err != nil || network != tc.network || address != tc.address {
			t.Errorf("%q: got (%q, %q, %v), want (%q, %q)", tc.in, network, address, err, tc.network, tc.address)
		}
	}
}
