package engine

import (
	"fmt"
	"time"
)

// defaultTeardownGrace bounds how long a backend waits for a worker to
// acknowledge a polite shutdown (process exit after stdin close, EOF echo
// after a socket half-close) before escalating.
const defaultTeardownGrace = 5 * time.Second

// reap runs wait — a blocking teardown step such as exec.Cmd.Wait or a
// read-until-EOF on a socket — and, if it has not returned within grace,
// calls kill (process kill, forced connection close) to unblock it, then
// keeps waiting for wait to return. grace <= 0 waits forever. This is the
// kill-after-timeout escalation shared by the Process backend's shard
// shutdown and the Socket backend's peer teardown: a hung worker must never
// block the coordinator indefinitely.
func reap(grace time.Duration, wait func() error, kill func() error) error {
	if grace <= 0 {
		return wait()
	}
	done := make(chan error, 1)
	go func() { done <- wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(grace):
	}
	// The timer and wait can become ready together (select picks randomly),
	// and the worker may finish in the instant before kill lands — drain
	// first, and never turn a teardown whose wait actually succeeded into a
	// failure.
	select {
	case err := <-done:
		return err
	default:
	}
	killErr := kill()
	err := <-done
	if err == nil {
		return nil
	}
	if killErr != nil {
		return fmt.Errorf("worker unresponsive after %v teardown grace and kill failed: %v (wait: %v)",
			grace, killErr, err)
	}
	return fmt.Errorf("worker killed after %v teardown grace (wait: %v)", grace, err)
}
