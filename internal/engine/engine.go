// Package engine is a deterministic parallel job runner: fan-out over a
// fixed worker pool, fan-in into index-ordered results. Every job receives
// its own PRNG stream derived from a root seed and its job index only, so a
// batch produces byte-identical results whether it runs on one worker or
// sixty-four — parallelism changes wall-clock time, never output. This is
// the substrate under every batch path in the repository: NE enumeration
// shards, dynamics replicates, batched distributed-protocol runs and the
// experiment suite of cmd/sweep.
//
// The fan-out/fan-in contract is pluggable (see Backend): Map and ForEach
// run closures over the default in-process pool, while registered tasks
// (RegisterTask) can run over any backend — the same pool (InProcess) or
// worker subprocesses sharded by the Process backend — with byte-identical
// results, because job seeds depend only on (root seed, job index).
package engine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/multiradio/chanalloc/internal/des"
	"github.com/multiradio/chanalloc/internal/obs"
)

// Stats reports how a batch executed. Timings describe the run; they are
// the only non-deterministic part of a Map result.
type Stats struct {
	// Workers is the pool size the batch actually used.
	Workers int
	// Jobs is the number of jobs executed (or aborted by a failure).
	Jobs int
	// Wall is the fan-out-to-fan-in duration of the whole batch.
	Wall time.Duration
	// JobTimes holds per-job execution times, indexed by job.
	JobTimes []time.Duration
	// Requeues counts jobs returned to the work queue after a peer failed —
	// a dial that never connected, a transport lost mid-job, or a cluster
	// worker evicted for silence with a window of jobs in flight (Socket
	// and Cluster backends only; always 0 elsewhere). Like the timings, it
	// describes how the batch executed, never what it produced.
	Requeues int
	// Resumed counts jobs recovered from a checkpoint journal instead of
	// executed (Cluster backend with WithClusterResume; always 0 elsewhere).
	// Recovered results ARE what an uninterrupted run would have produced —
	// the journal stores the exact result bytes — so like Requeues this
	// describes execution, not output.
	Resumed int
}

// TotalJobTime sums the per-job times — the serial cost the pool amortised.
func (s Stats) TotalJobTime() time.Duration {
	var total time.Duration
	for _, d := range s.JobTimes {
		total += d
	}
	return total
}

// config carries the functional options of Map and ForEach.
type config struct {
	workers int
	seed    uint64
}

// Option configures a batch run.
type Option func(*config)

// Workers fixes the pool size; n < 1 (and the default) means
// runtime.NumCPU().
func Workers(n int) Option {
	return func(c *config) { c.workers = n }
}

// Seed sets the root seed that every per-job PRNG stream is derived from
// (default 0).
func Seed(seed uint64) Option {
	return func(c *config) { c.seed = seed }
}

// defaultWorkers is the pool (and shard) size when the caller does not fix
// one: every CPU.
func defaultWorkers() int { return runtime.NumCPU() }

// JobSeed derives the seed of one job's PRNG stream from the root seed.
// The derivation depends only on (root, job) — never on worker identity or
// scheduling — which is what makes engine batches reproducible. The root is
// scrambled through SplitMix64 so that neighbouring jobs and neighbouring
// roots land in unrelated streams.
func JobSeed(root uint64, job int) uint64 {
	z := root + 0x9e3779b97f4a7c15*uint64(job+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Map runs jobs 0..n-1 over the worker pool and returns their results in
// job order. fn receives the job index and a private PRNG seeded by
// JobSeed(seed, job). If any job fails, Map still runs every job (so the
// error path is as worker-count independent as the success path) and then
// returns the error of the lowest-indexed failing job; results are nil.
func Map[T any](n int, fn func(job int, rng *des.RNG) (T, error), opts ...Option) ([]T, Stats, error) {
	cfg := config{}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.workers < 1 {
		cfg.workers = defaultWorkers()
	}
	if cfg.workers > n {
		cfg.workers = n
	}
	stats := Stats{Workers: cfg.workers, Jobs: n}
	if n < 0 {
		return nil, stats, fmt.Errorf("engine: negative job count %d", n)
	}
	if fn == nil {
		return nil, stats, fmt.Errorf("engine: nil job function")
	}
	if n == 0 {
		stats.Workers = 0
		return []T{}, stats, nil
	}

	mBatches.Inc()
	mDispatched.Add(uint64(n))
	start := time.Now()
	results := make([]T, n)
	errs := make([]error, n)
	stats.JobTimes = make([]time.Duration, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				job := int(next.Add(1) - 1)
				if job >= n {
					return
				}
				jobStart := time.Now()
				out, err := fn(job, des.NewRNG(JobSeed(cfg.seed, job)))
				took := time.Since(jobStart)
				stats.JobTimes[job] = took
				mCompleted.Inc()
				mDispatchLat.Observe(int64(took))
				if err != nil {
					errs[job] = err
					continue
				}
				results[job] = out
			}
		}()
	}
	wg.Wait()
	stats.Wall = time.Since(start)
	obs.Emit("batch", "inprocess", int64(n), int64(cfg.workers), 0)
	for job, err := range errs {
		if err != nil {
			return nil, stats, fmt.Errorf("engine: job %d: %w", job, err)
		}
	}
	return results, stats, nil
}

// ForEach is Map for jobs that produce no value.
func ForEach(n int, fn func(job int, rng *des.RNG) error, opts ...Option) (Stats, error) {
	if fn == nil {
		return Stats{}, fmt.Errorf("engine: nil job function")
	}
	_, stats, err := Map(n, func(job int, rng *des.RNG) (struct{}, error) {
		return struct{}{}, fn(job, rng)
	}, opts...)
	return stats, err
}
