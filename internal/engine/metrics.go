package engine

import "github.com/multiradio/chanalloc/internal/obs"

// Engine metrics, shared by every backend: jobs flow through the same
// counters whether the in-process pool, a subprocess shard, a dialed
// socket peer or a registered cluster member ran them. All increments sit
// on per-job or per-frame paths (microseconds and up) where a single
// atomic add is free; nothing here is read back by dispatch logic, so
// results stay byte-identical with metrics hot or cold.
var (
	mBatches     = obs.NewCounter("engine_batches_total")
	mDispatched  = obs.NewCounter("engine_jobs_dispatched_total")
	mCompleted   = obs.NewCounter("engine_jobs_completed_total")
	mRequeues    = obs.NewCounter("engine_requeues_total")
	mHeartbeats  = obs.NewCounter("engine_heartbeats_total")
	mEvictions   = obs.NewCounter("engine_evictions_total")
	mPeers       = obs.NewGauge("engine_peers")
	mInflight    = obs.NewGauge("engine_inflight_jobs")
	mWindowDepth = obs.NewHistogram("engine_peer_window_depth", obs.SmallCountBuckets)
	mDispatchLat = obs.NewHistogram("engine_dispatch_latency_ns", obs.LatencyBucketsNS)

	// Checkpoint-journal traffic (Cluster backend with WithClusterJournal):
	// entries appended vs. jobs skipped on resume. A resumed sweep should
	// show journal_writes + resumed_jobs == the batch size.
	mJournalWrites = obs.NewCounter("engine_journal_writes_total")
	mResumedJobs   = obs.NewCounter("engine_resumed_jobs_total")
)
