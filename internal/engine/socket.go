package engine

import (
	"crypto/tls"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Socket is the cross-machine Backend: a work-queue coordinator that
// dispatches a task batch over persistent connections to remote workers.
// Workers are engineworker/sweep processes listening on TCP or unix-socket
// addresses (see Serve / ListenAndServe); each connection opens with a
// version/task hello handshake (ProtocolVersion) and then speaks exactly
// the newline-delimited JSON job/result protocol of ServeWorker — the same
// frames the Process backend pipes over stdio, now crossing a network.
//
// Determinism is inherited from the wire contract: every job frame carries
// the seed JobSeed(root, job) derived by the coordinator, so which peer ran
// a job — and whether it had to be re-dispatched after a peer died — never
// shows in the results.
//
// Fault tolerance is at the connection level: when a peer's transport fails
// mid-job (killed worker, dropped link), the in-flight job is requeued for
// the surviving peers and the coordinator tries to re-dial the failed peer
// (WithRedials). The batch only fails on transport grounds when every peer
// is gone with jobs still undispatched.
type Socket struct {
	addrs       []string
	dialTimeout time.Duration
	redials     int
	redialWait  time.Duration
	teardown    time.Duration
	token       string
	tlsCfg      *tls.Config
}

// SocketOption configures a Socket backend.
type SocketOption func(*Socket)

// WithDialTimeout bounds each connection attempt (default 10s).
func WithDialTimeout(d time.Duration) SocketOption {
	return func(s *Socket) { s.dialTimeout = d }
}

// WithRedials sets how many times a peer connection is re-established after
// a failure — a dial that never connected or a transport lost mid-job —
// before the peer is abandoned (default 1). Each failure requeues the
// claimed job either way; redials only decide whether the peer gets
// another chance to serve.
func WithRedials(n int) SocketOption {
	return func(s *Socket) { s.redials = n }
}

// WithRedialWait sets the pause before a re-dial attempt (default 100ms).
func WithRedialWait(d time.Duration) SocketOption {
	return func(s *Socket) { s.redialWait = d }
}

// WithAuthToken sets the shared secret announced in the hello handshake.
// Workers started with the same token accept; any disagreement — wrong
// token, or only one side configured — fails loudly at connect time, like
// version skew (default: no token).
func WithAuthToken(token string) SocketOption {
	return func(s *Socket) { s.token = token }
}

// WithSocketTLS layers TLS client sessions under the job protocol: every
// peer dial handshakes with the given config (see ClientTLSConfig) before
// the hello frame is sent, so frame bytes are unchanged and certificate
// trouble surfaces as a dial error, not a mid-protocol decode failure.
// Workers must be listening with the matching WithServeTLS / -tls-cert
// (default: plain connections).
func WithSocketTLS(cfg *tls.Config) SocketOption {
	return func(s *Socket) { s.tlsCfg = cfg }
}

// WithSocketTeardown bounds the polite end-of-batch teardown per peer
// (half-close, await the worker's EOF echo) before the connection is
// force-closed; d <= 0 waits forever (default 5s, shared with the Process
// backend's shard reaping).
func WithSocketTeardown(d time.Duration) SocketOption {
	return func(s *Socket) { s.teardown = d }
}

// NewSocket builds a socket backend over the given worker addresses.
// Addresses are "host:port" (TCP), "unix:/path" or a bare filesystem path
// (unix socket); one persistent connection per address serves jobs for the
// whole batch.
func NewSocket(addrs ...string) *Socket {
	s := &Socket{
		addrs:       append([]string(nil), addrs...),
		dialTimeout: 10 * time.Second,
		redials:     1,
		redialWait:  100 * time.Millisecond,
		teardown:    defaultTeardownGrace,
	}
	return s
}

// NewSocketWith is NewSocket plus options.
func NewSocketWith(addrs []string, opts ...SocketOption) *Socket {
	s := NewSocket(addrs...)
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Name implements Backend.
func (s *Socket) Name() string { return "socket" }

// socketPeer is one live worker connection with JSON framing.
type socketPeer struct {
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
}

// dial connects and handshakes one peer.
func (s *Socket) dial(addr, task string) (*socketPeer, error) {
	network, address, err := splitWorkerAddr(addr)
	if err != nil {
		return nil, err
	}
	conn, err := dialWorkerConn(network, address, s.dialTimeout, s.tlsCfg)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", addr, err)
	}
	p := &socketPeer{conn: conn, enc: json.NewEncoder(conn), dec: json.NewDecoder(conn)}
	if err := clientHandshake(p.enc, p.dec, task, s.token); err != nil {
		conn.Close()
		return nil, fmt.Errorf("handshake with %s: %w", addr, err)
	}
	return p, nil
}

// runJob executes one job on the peer, lock-step, mirroring the Process
// backend's shard framing.
func (p *socketPeer) runJob(m *wireMsg) (*wireMsg, error) {
	if err := p.enc.Encode(m); err != nil {
		return nil, fmt.Errorf("sending job %d: %w", m.Job, err)
	}
	var reply wireMsg
	if err := p.dec.Decode(&reply); err != nil {
		return nil, fmt.Errorf("awaiting result of job %d: %w", m.Job, err)
	}
	if reply.Type != wireResult || reply.Job != m.Job {
		return nil, fmt.Errorf("got frame %q for job %d, want result of job %d",
			reply.Type, reply.Job, m.Job)
	}
	return &reply, nil
}

// shutdown tears the peer connection down politely: half-close our writing
// side so the worker's ServeWorker loop sees EOF and its listener closes
// the connection, then await that close — escalating to a forced close via
// the shared reap helper if the worker hangs.
func (p *socketPeer) shutdown(grace time.Duration) error {
	type closeWriter interface{ CloseWrite() error }
	cw, ok := p.conn.(closeWriter)
	if !ok {
		return p.conn.Close()
	}
	if err := cw.CloseWrite(); err != nil {
		p.conn.Close()
		return nil
	}
	return reap(grace, func() error {
		// The worker answers the half-close by closing its side; any decode
		// outcome (EOF, reset, even a stray frame) means the connection is
		// done — the read only exists to wait for that close.
		var m wireMsg
		_ = p.dec.Decode(&m)
		p.conn.Close()
		return nil
	}, func() error { return p.conn.Close() })
}

// abort force-closes the peer after a transport failure.
func (p *socketPeer) abort() { p.conn.Close() }

// RunTask implements Backend: fan the batch's jobs out over the worker
// connections through a shared requeueing work queue and fan the JSON
// results in by job index. Job errors surface with Map's semantics — every
// job still runs, then the lowest-indexed failure is returned with nil
// results, worded identically to every other backend. A dead peer's
// in-flight job is requeued and re-dispatched to a surviving peer (counted
// in Stats.Requeues); only when every peer has failed with jobs left does a
// distinct "socket backend" transport error surface.
func (s *Socket) RunTask(task string, params json.RawMessage, n int, opts ...Option) ([]json.RawMessage, Stats, error) {
	cfg := config{}
	for _, opt := range opts {
		opt(&cfg)
	}
	if _, ok := taskByName(task); !ok {
		return nil, Stats{}, fmt.Errorf("engine: unknown task %q (registered: %v)", task, TaskNames())
	}
	if len(s.addrs) == 0 {
		return nil, Stats{}, fmt.Errorf("engine: socket backend has no worker addresses")
	}
	// Every configured peer participates even when there are more peers
	// than jobs: connections are dialed lazily (only when a peer takes a
	// job), so surplus peers cost nothing — and they are the fallbacks
	// that pick up a requeued job when another peer dies.
	peers := s.addrs
	stats := Stats{Workers: len(peers), Jobs: n}
	if n < 0 {
		return nil, stats, fmt.Errorf("engine: negative job count %d", n)
	}
	if n == 0 {
		stats.Workers = 0
		return []json.RawMessage{}, stats, nil
	}

	start := time.Now()
	results := make([]json.RawMessage, n)
	errs := make([]string, n)
	failed := make([]bool, n)
	stats.JobTimes = make([]time.Duration, n)
	peerErrs := make([]error, len(peers))

	// The work queue. Its buffer holds every job, so a requeue — which can
	// only happen while the requeued job is still pending — never blocks.
	// The queue closes exactly when the last pending job completes, which
	// releases every idle peer.
	queue := make(chan int, n)
	for job := 0; job < n; job++ {
		queue <- job
	}
	var pending atomic.Int64
	pending.Store(int64(n))
	finish := func() {
		if pending.Add(-1) == 0 {
			close(queue)
		}
	}
	var requeues atomic.Int64

	var wg sync.WaitGroup
	for w, addr := range peers {
		wg.Add(1)
		go func(w int, addr string) {
			defer wg.Done()
			var peer *socketPeer
			redials := s.redials
			defer func() {
				if peer != nil {
					peer.shutdown(s.teardown)
				}
			}()
			for job := range queue {
				if peer == nil {
					p, err := s.dial(addr, task)
					if err != nil {
						// The job goes back on the queue either way; the
						// redial budget decides whether this peer keeps
						// trying to connect (a restarting worker) or is
						// abandoned — the same budget mid-job failures
						// consume.
						peerErrs[w] = err
						queue <- job
						requeues.Add(1)
						mRequeues.Inc()
						if redials <= 0 {
							return
						}
						redials--
						if s.redialWait > 0 {
							time.Sleep(s.redialWait)
						}
						continue
					}
					peer = p
				}
				jobStart := time.Now()
				reply, err := peer.runJob(&wireMsg{
					Type:   wireJob,
					Job:    job,
					Task:   task,
					Params: params,
					Seed:   JobSeed(cfg.seed, job),
				})
				stats.JobTimes[job] = time.Since(jobStart)
				if err != nil {
					// Transport failure mid-job: the job is requeued for the
					// surviving peers, and this peer gets another connection
					// if its redial budget allows.
					peerErrs[w] = fmt.Errorf("%s: %w", addr, err)
					peer.abort()
					peer = nil
					queue <- job
					requeues.Add(1)
					mRequeues.Inc()
					if redials <= 0 {
						return
					}
					redials--
					if s.redialWait > 0 {
						time.Sleep(s.redialWait)
					}
					continue
				}
				if reply.Error != "" {
					errs[job] = reply.Error
					failed[job] = true
				} else {
					results[job] = reply.Value
				}
				finish()
			}
		}(w, addr)
	}
	wg.Wait()
	stats.Wall = time.Since(start)
	stats.Requeues = int(requeues.Load())

	// Transport failure only counts when it lost work: jobs still pending
	// after every peer returned mean the every-job-runs contract was broken.
	if left := pending.Load(); left > 0 {
		first := fmt.Errorf("no peer error recorded")
		for _, err := range peerErrs {
			if err != nil {
				first = err
				break
			}
		}
		return nil, stats, fmt.Errorf("engine: socket backend: %d of %d jobs undispatched after all %d peers failed; first failure: %w",
			left, n, len(peers), first)
	}
	if err := surfaceJobErrors("socket", results, errs, failed); err != nil {
		return nil, stats, err
	}
	return results, stats, nil
}
