package engine

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
	"sync/atomic"
	"time"
)

// Process is the multi-process Backend: a coordinator that shards a task
// batch over worker subprocesses. Each shard is the current binary
// re-exec'd with WorkerEnv set (see RunWorkerIfRequested), speaking
// newline-delimited JSON over its stdio. Because every job's PRNG seed is
// derived by the coordinator as JobSeed(root, job) and shipped in the job
// frame, the shards produce exactly the bytes the in-process pool would —
// which shard ran a job, and in what order, never shows in the results.
type Process struct {
	shards   int
	command  func() *exec.Cmd
	teardown time.Duration
}

// ProcessOption configures a Process backend.
type ProcessOption func(*Process)

// WithWorkerCommand overrides how worker subprocesses are started (the
// default re-execs the current binary with WorkerEnv set). The command's
// environment must make RunWorkerIfRequested trigger in the child, and the
// child must have the batch's tasks registered.
func WithWorkerCommand(command func() *exec.Cmd) ProcessOption {
	return func(p *Process) { p.command = command }
}

// WithTeardownTimeout bounds how long shutdown waits for a worker to exit
// after its job stream closes before killing it (d <= 0 waits forever;
// default 5s). A worker that hangs instead of exiting must not block the
// coordinator indefinitely.
func WithTeardownTimeout(d time.Duration) ProcessOption {
	return func(p *Process) { p.teardown = d }
}

// NewProcess builds a multi-process backend with the given shard count
// (worker subprocesses); shards < 1 means GOMAXPROCS-many via the same
// default as the in-process pool.
func NewProcess(shards int, opts ...ProcessOption) *Process {
	p := &Process{shards: shards, command: selfWorkerCommand, teardown: defaultTeardownGrace}
	for _, opt := range opts {
		opt(p)
	}
	return p
}

// selfWorkerCommand re-execs the current binary as a worker.
func selfWorkerCommand() *exec.Cmd {
	exe, err := os.Executable()
	if err != nil {
		// Surfaces as a spawn error when the command runs.
		exe = os.Args[0]
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), WorkerEnv+"=1")
	cmd.Stderr = os.Stderr
	return cmd
}

// Name implements Backend.
func (p *Process) Name() string { return "process" }

// shard is one live worker subprocess with JSON framing over its stdio.
type shard struct {
	cmd      *exec.Cmd
	stdin    io.WriteCloser
	enc      *json.Encoder
	dec      *json.Decoder
	teardown time.Duration
}

// start spawns one worker subprocess.
func (p *Process) start() (*shard, error) {
	cmd := p.command()
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, fmt.Errorf("opening worker stdin: %w", err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("opening worker stdout: %w", err)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("starting worker: %w", err)
	}
	return &shard{
		cmd:      cmd,
		stdin:    stdin,
		enc:      json.NewEncoder(stdin),
		dec:      json.NewDecoder(stdout),
		teardown: p.teardown,
	}, nil
}

// runJob executes one job on the shard, lock-step: send the frame, await
// the matching reply.
func (s *shard) runJob(m *wireMsg) (*wireMsg, error) {
	if err := s.enc.Encode(m); err != nil {
		return nil, fmt.Errorf("sending job %d: %w", m.Job, err)
	}
	var reply wireMsg
	if err := s.dec.Decode(&reply); err != nil {
		return nil, fmt.Errorf("awaiting result of job %d: %w", m.Job, err)
	}
	if reply.Type != wireResult || reply.Job != m.Job {
		return nil, fmt.Errorf("got frame %q for job %d, want result of job %d",
			reply.Type, reply.Job, m.Job)
	}
	return &reply, nil
}

// shutdown closes the job stream and reaps the subprocess. A healthy worker
// exits on the stream's EOF; one that hangs — wedged in a task, or a peer
// that stopped reading after a transport error — is killed once the
// teardown grace expires, so cmd.Wait can never block the coordinator
// forever (the escalation is shared with the Socket backend's peer
// teardown, see reap).
func (s *shard) shutdown() error {
	s.stdin.Close()
	return reap(s.teardown, s.cmd.Wait, func() error { return s.cmd.Process.Kill() })
}

// RunTask implements Backend: fan the batch's jobs out over the worker
// subprocesses (dynamic dispatch off a shared counter, exactly like the
// in-process pool) and fan the JSON results in by job index. Job errors
// surface with Map's semantics — every job still runs, then the
// lowest-indexed failure is returned with nil results, worded identically
// to the in-process backend. Transport failures (a worker dying, a broken
// pipe) surface as distinct "process backend" errors instead.
func (p *Process) RunTask(task string, params json.RawMessage, n int, opts ...Option) ([]json.RawMessage, Stats, error) {
	cfg := config{}
	for _, opt := range opts {
		opt(&cfg)
	}
	if _, ok := taskByName(task); !ok {
		return nil, Stats{}, fmt.Errorf("engine: unknown task %q (registered: %v)", task, TaskNames())
	}
	shards := p.shards
	if shards < 1 {
		shards = defaultWorkers()
	}
	if shards > n {
		shards = n
	}
	stats := Stats{Workers: shards, Jobs: n}
	if n < 0 {
		return nil, stats, fmt.Errorf("engine: negative job count %d", n)
	}
	if n == 0 {
		stats.Workers = 0
		return []json.RawMessage{}, stats, nil
	}

	start := time.Now()
	results := make([]json.RawMessage, n)
	errs := make([]string, n)
	failed := make([]bool, n)
	stats.JobTimes = make([]time.Duration, n)
	infraErrs := make([]error, shards)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < shards; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sh, err := p.start()
			if err != nil {
				infraErrs[w] = err
				return
			}
			for {
				job := int(next.Add(1) - 1)
				if job >= n {
					break
				}
				jobStart := time.Now()
				reply, err := sh.runJob(&wireMsg{
					Type:   wireJob,
					Job:    job,
					Task:   task,
					Params: params,
					Seed:   JobSeed(cfg.seed, job),
				})
				stats.JobTimes[job] = time.Since(jobStart)
				if err != nil {
					infraErrs[w] = err
					sh.shutdown()
					return
				}
				if reply.Error != "" {
					errs[job] = reply.Error
					failed[job] = true
					continue
				}
				results[job] = reply.Value
			}
			if err := sh.shutdown(); err != nil {
				infraErrs[w] = fmt.Errorf("worker exit: %w", err)
			}
		}(w)
	}
	wg.Wait()
	stats.Wall = time.Since(start)
	// Transport failures first: a dead shard means its in-flight job never
	// ran, so the batch did NOT honour the every-job-runs contract and the
	// crash must not be masked by an ordinary job error elsewhere.
	for w, err := range infraErrs {
		if err != nil {
			return nil, stats, fmt.Errorf("engine: process backend shard %d: %w", w, err)
		}
	}
	// A dead shard's unclaimed jobs stay unexecuted; surfaceJobErrors makes
	// sure none slipped through silently (every job must have a result or a
	// recorded error).
	if err := surfaceJobErrors("process", results, errs, failed); err != nil {
		return nil, stats, err
	}
	return results, stats, nil
}
