package engine

import (
	"bytes"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/multiradio/chanalloc/internal/faultinject"
	"github.com/multiradio/chanalloc/internal/obs"
)

// The chaos conformance suite: the cluster backend under a seeded,
// budget-bounded network adversary (internal/faultinject) must fan in
// byte-identical to the fault-free in-process baseline. Which operations the
// faults land on depends on scheduling, so the assertion is deliberately
// schedule-independent: for ANY in-budget fault placement the results are
// the same bytes — requeues, redials and evictions are wall-clock noise,
// never data.

// chaosConfig is the suite's standard adversary mix: connection drops at
// accept, read/write delays, and occasional severs, all from one seed with a
// shared budget.
func chaosConfig(seed uint64) faultinject.Config {
	return faultinject.Config{
		Seed:       seed,
		DropAccept: 0.25,
		Delay:      0.10,
		MaxDelay:   2 * time.Millisecond,
		Sever:      0.02,
		Budget:     32,
	}
}

// startChaosCluster builds a coordinator whose listener is wrapped by the
// injector (faults bite below TLS when tlsOpts add it) plus `workers`
// redialing in-process workers.
func startChaosCluster(t *testing.T, inj *faultinject.Injector, workers int,
	clusterOpts []ClusterOption, joinOpts []JoinOption) *Cluster {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := NewClusterOn(inj.Listener(lis), append([]ClusterOption{
		WithJoinWait(20 * time.Second),
		WithClusterHeartbeat(50 * time.Millisecond),
	}, clusterOpts...)...)
	t.Cleanup(func() { c.Close() })
	runWorkers(t, c.Addr(), workers, joinOpts...)
	return c
}

// TestChaosSeededFaultsByteIdentical runs the suite at every pinned window
// size: lock-step (1), the default-ish (8) and deeper than the batch (32).
func TestChaosSeededFaultsByteIdentical(t *testing.T) {
	const n, root = 40, 17
	params := []byte(`{"mul":31,"label":"chaos"}`)
	want, _, err := NewInProcess().RunTask("conformance/draw", params, n, Seed(root))
	if err != nil {
		t.Fatal(err)
	}
	for _, window := range []int{1, 8, 32} {
		t.Run(fmt.Sprintf("window=%d", window), func(t *testing.T) {
			inj := faultinject.New(chaosConfig(uint64(window)*31 + 7))
			c := startChaosCluster(t, inj, 3,
				[]ClusterOption{WithClusterWindow(window)}, nil)
			got, stats, err := c.RunTask("conformance/draw", params, n, Seed(root))
			if err != nil {
				t.Fatal(err)
			}
			for job := range want {
				if !bytes.Equal(want[job], got[job]) {
					t.Fatalf("job %d under faults: %s vs baseline %s", job, got[job], want[job])
				}
			}
			if spent := inj.Spent(); spent > chaosConfig(0).Budget {
				t.Fatalf("injector overspent its budget: %d", spent)
			} else {
				t.Logf("window=%d: %d faults injected, %d requeues", window, spent, stats.Requeues)
			}
		})
	}
}

// TestChaosTLSByteIdentical: the same adversary with TLS layered above the
// injected transport — handshakes retry through drops and severs, and the
// results still match the baseline byte for byte.
func TestChaosTLSByteIdentical(t *testing.T) {
	const n, root = 30, 23
	params := []byte(`{"mul":13,"label":"chaos-tls"}`)
	want, _, err := NewInProcess().RunTask("conformance/draw", params, n, Seed(root))
	if err != nil {
		t.Fatal(err)
	}
	srvCfg, cliCfg := testTLSPair(t)
	inj := faultinject.New(chaosConfig(99))
	c := startChaosCluster(t, inj, 2,
		[]ClusterOption{WithClusterWindow(8), WithClusterTLS(srvCfg)},
		[]JoinOption{WithJoinTLS(cliCfg)})
	got, _, err := c.RunTask("conformance/draw", params, n, Seed(root))
	if err != nil {
		t.Fatal(err)
	}
	for job := range want {
		if !bytes.Equal(want[job], got[job]) {
			t.Fatalf("job %d under TLS faults: %s vs baseline %s", job, got[job], want[job])
		}
	}
}

// TestChaosWorkerKillSchedule: workers killed and restarted on a seeded
// KillSchedule while a batch runs; in-flight jobs requeue to survivors and
// the fan-in is byte-identical.
func TestChaosWorkerKillSchedule(t *testing.T) {
	const n, root = 60, 29
	params := []byte(`{"mul":5,"label":"kill-sched"}`)
	want, _, err := NewInProcess().RunTask("chaos/slow", params, n, Seed(root))
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster("127.0.0.1:0",
		WithJoinWait(20*time.Second),
		WithClusterHeartbeat(50*time.Millisecond),
		WithClusterWindow(4))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// One stable worker guarantees progress; a second population churns on
	// the kill schedule.
	runWorkers(t, c.Addr(), 1)

	schedule := faultinject.KillSchedule(0xc0ffee, 5, 5*time.Millisecond, 25*time.Millisecond)
	churnQuit := make(chan struct{})
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		var wg sync.WaitGroup
		defer wg.Wait()
		for _, delay := range schedule {
			stopW := make(chan struct{})
			wg.Add(1)
			go func() {
				defer wg.Done()
				JoinAndServe(c.Addr(), WithJoinStop(stopW), WithJoinRetryWait(5*time.Millisecond))
			}()
			select {
			case <-time.After(delay):
			case <-churnQuit:
				close(stopW)
				return
			}
			close(stopW) // the kill: conn severed mid-whatever
			faultinject.CountKill()
		}
	}()
	defer func() { close(churnQuit); <-churnDone }()

	before := obs.Snapshot()
	got, stats, err := c.RunTask("chaos/slow", params, n, Seed(root))
	if err != nil {
		t.Fatal(err)
	}
	for job := range want {
		if !bytes.Equal(want[job], got[job]) {
			t.Fatalf("job %d under worker churn: %s vs baseline %s", job, got[job], want[job])
		}
	}
	after := obs.Snapshot()
	kills := obsValue(after, "faultinject_kills_total") - obsValue(before, "faultinject_kills_total")
	t.Logf("churn: %d kills recorded, %d requeues, %d workers", kills, stats.Requeues, stats.Workers)
}

// TestChaosKillResumeUnderFaults combines everything: seeded network faults,
// a mid-batch coordinator kill, and a journal resume — the second
// coordinator, also under faults, completes the batch byte-identical.
func TestChaosKillResumeUnderFaults(t *testing.T) {
	const n, root = 40, 31
	params := []byte(`{"mul":19,"label":"chaos-resume"}`)
	want, _, err := NewInProcess().RunTask("chaos/slow", params, n, Seed(root))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sweep.journal")

	inj1 := faultinject.New(chaosConfig(41))
	c1 := startChaosCluster(t, inj1, 2,
		[]ClusterOption{WithClusterWindow(4), WithClusterJournal(path)}, nil)
	go func() {
		deadline := time.Now().Add(15 * time.Second)
		for time.Now().Before(deadline) {
			if journalLines(t, path) >= 6 {
				break
			}
			time.Sleep(time.Millisecond)
		}
		c1.Close()
		faultinject.CountKill()
	}()
	if _, _, err := c1.RunTask("chaos/slow", params, n, Seed(root)); err == nil {
		t.Fatal("killed coordinator completed the batch (kill landed too late)")
	}

	inj2 := faultinject.New(chaosConfig(43))
	c2 := startChaosCluster(t, inj2, 2,
		[]ClusterOption{WithClusterWindow(4), WithClusterJournal(path), WithClusterResume(true)}, nil)
	got, stats, err := c2.RunTask("chaos/slow", params, n, Seed(root))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Resumed < 1 {
		t.Fatalf("resume recovered nothing (journal had entries)")
	}
	for job := range want {
		if !bytes.Equal(want[job], got[job]) {
			t.Fatalf("job %d after chaos kill+resume: %s vs baseline %s", job, got[job], want[job])
		}
	}
	t.Logf("chaos resume: %d resumed, %d+%d faults injected", stats.Resumed, inj1.Spent(), inj2.Spent())
}
