package engine

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"
)

// ProtocolVersion is the version of the coordinator<->worker wire protocol
// spoken over socket transports. It is exchanged in the hello handshake that
// opens every connection, so binaries built from skewed revisions fail
// loudly at connect time instead of silently misinterpreting frames.
//
// History:
//
//	v1 — hello handshake; job/result frames with a mandatory seed field.
//	     Additive since: register/heartbeat frames (cluster membership,
//	     only ever spoken on worker-dials-coordinator connections, so a v1
//	     peer never sees them unsolicited), an optional auth token on hello
//	     and register, and the heartbeat_ms field of a register's reply.
//
// Bump it whenever a frame's meaning changes incompatibly (a field changing
// semantics, a mandatory field appearing). Purely additive fields do not
// need a bump: unknown fields are ignored by both ends.
const ProtocolVersion = 1

// rejectAuthToken is the loud-but-secret-free reason a token mismatch
// reports: the token value itself never crosses the wire in an error.
const rejectAuthToken = "auth token mismatch (coordinator and worker -auth-token must agree)"

// clientHandshake opens a coordinator->worker connection: announce our
// protocol version, the task the batch will run and our auth token, then
// require a matching hello back. The worker rejects (with a reason in the
// reply's Error field) when versions differ, the task is not in its
// registry or the tokens disagree — all configuration mistakes that must
// surface before any job is dispatched.
func clientHandshake(enc *json.Encoder, dec *json.Decoder, task, token string) error {
	if err := enc.Encode(&wireMsg{Type: wireHello, Version: ProtocolVersion, Task: task, Token: token}); err != nil {
		return fmt.Errorf("sending hello: %w", err)
	}
	var reply wireMsg
	if err := dec.Decode(&reply); err != nil {
		return fmt.Errorf("awaiting hello reply (a pre-versioning or TLS-expecting worker closes here — do the -tls flags agree on both ends?): %w", err)
	}
	if reply.Type != wireHello {
		return fmt.Errorf("got frame %q for hello reply, want %q (worker speaks a pre-versioning protocol?)",
			reply.Type, wireHello)
	}
	if reply.Error != "" {
		return fmt.Errorf("worker rejected handshake: %s", reply.Error)
	}
	if reply.Version != ProtocolVersion {
		return fmt.Errorf("protocol version mismatch: coordinator v%d, worker v%d",
			ProtocolVersion, reply.Version)
	}
	return nil
}

// serverHandshake answers the worker end of the hello exchange. A rejected
// handshake is reported to the peer (reply with Error set) and returned so
// the caller closes the connection; an accepted one advertises the worker's
// protocol version and registered tasks. token is the worker's configured
// shared secret ("" means unauthenticated): the coordinator's token must
// match exactly — an authenticated worker rejects a token-less coordinator
// just as loudly as a wrong-token one.
func serverHandshake(enc *json.Encoder, dec *json.Decoder, token string) error {
	var m wireMsg
	if err := dec.Decode(&m); err != nil {
		return fmt.Errorf("awaiting hello: %w", err)
	}
	reject := func(reason string) error {
		// Best effort: the coordinator may already be gone.
		_ = enc.Encode(&wireMsg{Type: wireHello, Version: ProtocolVersion, Error: reason})
		return fmt.Errorf("rejecting handshake: %s", reason)
	}
	if m.Type != wireHello {
		return reject(fmt.Sprintf("expected %q frame, got %q (coordinator speaks a pre-versioning protocol?)",
			wireHello, m.Type))
	}
	if m.Version != ProtocolVersion {
		return reject(fmt.Sprintf("protocol version mismatch: coordinator v%d, worker v%d",
			m.Version, ProtocolVersion))
	}
	if m.Token != token {
		return reject(rejectAuthToken)
	}
	if m.Task != "" {
		if _, ok := taskByName(m.Task); !ok {
			return reject(fmt.Sprintf("unknown task %q (registered: %v)", m.Task, TaskNames()))
		}
	}
	if err := enc.Encode(&wireMsg{Type: wireHello, Version: ProtocolVersion, Tasks: TaskNames()}); err != nil {
		return fmt.Errorf("sending hello reply: %w", err)
	}
	return nil
}

// errRegisterRejected tags registration failures that are coordinator
// VERDICTS — auth, version or protocol rejections a redial cannot change —
// as opposed to transport failures (connection lost, reply cut short),
// which the join loop should retry.
var errRegisterRejected = errors.New("registration rejected")

// registerHandshake is the worker end of the cluster join exchange — the
// hello handshake with the dialing direction reversed. The worker (which
// dialed in) announces its protocol version, registered tasks and auth
// token in a register frame; the coordinator answers with a standard hello
// reply — version, its own task registry, and the heartbeat cadence it
// expects — or a hello whose Error explains the rejection. It returns the
// heartbeat interval the coordinator advertised (0 if none); errors
// wrapping errRegisterRejected are verdicts, everything else is transport.
func registerHandshake(enc *json.Encoder, dec *json.Decoder, token string) (heartbeat time.Duration, err error) {
	if err := enc.Encode(&wireMsg{
		Type:    wireRegister,
		Version: ProtocolVersion,
		Tasks:   TaskNames(),
		Token:   token,
	}); err != nil {
		return 0, fmt.Errorf("sending register: %w", err)
	}
	var reply wireMsg
	if err := dec.Decode(&reply); err != nil {
		return 0, fmt.Errorf("awaiting register reply (a pre-membership or TLS-expecting coordinator closes here — do the -tls flags agree on both ends?): %w", err)
	}
	if reply.Type != wireHello {
		return 0, fmt.Errorf("%w: got frame %q for register reply, want %q",
			errRegisterRejected, reply.Type, wireHello)
	}
	if reply.Error != "" {
		// The coordinator's verdict is final: retrying cannot fix an auth,
		// version or registry rejection.
		return 0, fmt.Errorf("%w by coordinator: %s", errRegisterRejected, reply.Error)
	}
	if reply.Version != ProtocolVersion {
		return 0, fmt.Errorf("%w: protocol version mismatch: worker v%d, coordinator v%d",
			errRegisterRejected, ProtocolVersion, reply.Version)
	}
	return time.Duration(reply.HeartbeatMillis) * time.Millisecond, nil
}

// acceptRegistration is the coordinator end of the cluster join exchange:
// require a register frame with a matching version and token, reply with a
// hello carrying this coordinator's registry and expected heartbeat
// cadence, and return the worker's announced tasks.
func acceptRegistration(enc *json.Encoder, dec *json.Decoder, token string, heartbeat time.Duration) (tasks []string, err error) {
	var m wireMsg
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("awaiting register: %w", err)
	}
	reject := func(reason string) error {
		// Best effort: the worker may already be gone.
		_ = enc.Encode(&wireMsg{Type: wireHello, Version: ProtocolVersion, Error: reason})
		return fmt.Errorf("rejecting registration: %s", reason)
	}
	if m.Type != wireRegister {
		return nil, reject(fmt.Sprintf("expected %q frame, got %q (worker speaks a pre-membership protocol?)",
			wireRegister, m.Type))
	}
	if m.Version != ProtocolVersion {
		return nil, reject(fmt.Sprintf("protocol version mismatch: worker v%d, coordinator v%d",
			m.Version, ProtocolVersion))
	}
	if m.Token != token {
		return nil, reject(rejectAuthToken)
	}
	if err := enc.Encode(&wireMsg{
		Type:            wireHello,
		Version:         ProtocolVersion,
		Tasks:           TaskNames(),
		HeartbeatMillis: int(heartbeat / time.Millisecond),
	}); err != nil {
		return nil, fmt.Errorf("sending register reply: %w", err)
	}
	return m.Tasks, nil
}

// splitWorkerAddr resolves a worker address string into a (network, address)
// pair for net.Dial / net.Listen. "unix:" prefixes and bare filesystem paths
// select unix sockets; everything else is TCP host:port.
func splitWorkerAddr(addr string) (network, address string, err error) {
	switch {
	case strings.TrimSpace(addr) == "":
		return "", "", fmt.Errorf("engine: empty worker address")
	case strings.HasPrefix(addr, "unix:"):
		return "unix", strings.TrimPrefix(addr, "unix:"), nil
	case strings.HasPrefix(addr, "tcp:"):
		return "tcp", strings.TrimPrefix(addr, "tcp:"), nil
	case strings.ContainsAny(addr, "/"):
		return "unix", addr, nil
	case !strings.Contains(addr, ":"):
		// TCP needs host:port; a colon-less address ("worker.sock") can
		// only be a relative unix-socket path.
		return "unix", addr, nil
	default:
		return "tcp", addr, nil
	}
}
