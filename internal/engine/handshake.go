package engine

import (
	"encoding/json"
	"fmt"
	"strings"
)

// ProtocolVersion is the version of the coordinator<->worker wire protocol
// spoken over socket transports. It is exchanged in the hello handshake that
// opens every connection, so binaries built from skewed revisions fail
// loudly at connect time instead of silently misinterpreting frames.
//
// History:
//
//	v1 — hello handshake; job/result frames with a mandatory seed field.
//
// Bump it whenever a frame's meaning changes incompatibly (a field changing
// semantics, a mandatory field appearing). Purely additive fields do not
// need a bump: unknown fields are ignored by both ends.
const ProtocolVersion = 1

// clientHandshake opens a coordinator->worker connection: announce our
// protocol version and the task the batch will run, then require a matching
// hello back. The worker rejects (with a reason in the reply's Error field)
// when versions differ or the task is not in its registry — both are
// configuration mistakes that must surface before any job is dispatched.
func clientHandshake(enc *json.Encoder, dec *json.Decoder, task string) error {
	if err := enc.Encode(&wireMsg{Type: wireHello, Version: ProtocolVersion, Task: task}); err != nil {
		return fmt.Errorf("sending hello: %w", err)
	}
	var reply wireMsg
	if err := dec.Decode(&reply); err != nil {
		return fmt.Errorf("awaiting hello reply (a pre-versioning worker closes here): %w", err)
	}
	if reply.Type != wireHello {
		return fmt.Errorf("got frame %q for hello reply, want %q (worker speaks a pre-versioning protocol?)",
			reply.Type, wireHello)
	}
	if reply.Error != "" {
		return fmt.Errorf("worker rejected handshake: %s", reply.Error)
	}
	if reply.Version != ProtocolVersion {
		return fmt.Errorf("protocol version mismatch: coordinator v%d, worker v%d",
			ProtocolVersion, reply.Version)
	}
	return nil
}

// serverHandshake answers the worker end of the hello exchange. A rejected
// handshake is reported to the peer (reply with Error set) and returned so
// the caller closes the connection; an accepted one advertises the worker's
// protocol version and registered tasks.
func serverHandshake(enc *json.Encoder, dec *json.Decoder) error {
	var m wireMsg
	if err := dec.Decode(&m); err != nil {
		return fmt.Errorf("awaiting hello: %w", err)
	}
	reject := func(reason string) error {
		// Best effort: the coordinator may already be gone.
		_ = enc.Encode(&wireMsg{Type: wireHello, Version: ProtocolVersion, Error: reason})
		return fmt.Errorf("rejecting handshake: %s", reason)
	}
	if m.Type != wireHello {
		return reject(fmt.Sprintf("expected %q frame, got %q (coordinator speaks a pre-versioning protocol?)",
			wireHello, m.Type))
	}
	if m.Version != ProtocolVersion {
		return reject(fmt.Sprintf("protocol version mismatch: coordinator v%d, worker v%d",
			m.Version, ProtocolVersion))
	}
	if m.Task != "" {
		if _, ok := taskByName(m.Task); !ok {
			return reject(fmt.Sprintf("unknown task %q (registered: %v)", m.Task, TaskNames()))
		}
	}
	if err := enc.Encode(&wireMsg{Type: wireHello, Version: ProtocolVersion, Tasks: TaskNames()}); err != nil {
		return fmt.Errorf("sending hello reply: %w", err)
	}
	return nil
}

// splitWorkerAddr resolves a worker address string into a (network, address)
// pair for net.Dial / net.Listen. "unix:" prefixes and bare filesystem paths
// select unix sockets; everything else is TCP host:port.
func splitWorkerAddr(addr string) (network, address string, err error) {
	switch {
	case strings.TrimSpace(addr) == "":
		return "", "", fmt.Errorf("engine: empty worker address")
	case strings.HasPrefix(addr, "unix:"):
		return "unix", strings.TrimPrefix(addr, "unix:"), nil
	case strings.HasPrefix(addr, "tcp:"):
		return "tcp", strings.TrimPrefix(addr, "tcp:"), nil
	case strings.ContainsAny(addr, "/"):
		return "unix", addr, nil
	case !strings.Contains(addr, ":"):
		// TCP needs host:port; a colon-less address ("worker.sock") can
		// only be a relative unix-socket path.
		return "unix", addr, nil
	default:
		return "tcp", addr, nil
	}
}
