// Package live implements the long-lived allocation service: a mutable
// channel-allocation game (hetero.LiveGame) behind a newline-delimited JSON
// protocol. Clients stream churn events — users joining, leaving, changing
// radio budgets — and the server answers every event with the warm-started
// re-equilibration's outcome (dynamics.Requilibrate): the new allocation
// summary plus convergence statistics.
//
// The wire format is one JSON object per line (NDJSON), the same framing
// the engine's worker protocol uses. The server speaks first with a hello
// frame carrying ProtocolVersion; a client that sees a version it does not
// know must disconnect. All frames are deterministic functions of the
// event stream and the server configuration — worker count never shows in
// the bytes, so a seeded trace has one golden transcript.
package live

// ProtocolVersion identifies the frame schema. Version 1: hello frame
// {type, version, channels, rate}; requests {op, id?, budget?} with ops
// join/leave/budget/stats/bye; responses {type, error?, update?, stats?}.
const ProtocolVersion = 1

// Hello is the server's first frame on every connection.
type Hello struct {
	Type     string `json:"type"` // always "hello"
	Version  int    `json:"version"`
	Channels int    `json:"channels"`
	Rate     string `json:"rate"`
}

// Request is one client frame. Ops:
//
//	join   — admit a user with Budget radios; the update echoes the
//	         server-assigned id (sequential from 1, never reused)
//	leave  — remove user ID
//	budget — set user ID's radio budget to Budget
//	stats  — report cumulative session statistics (no mutation)
//	bye    — polite shutdown; the server answers with a bye frame
//
// ID and Budget are zero exactly when they are not meaningful for the op
// (valid ids start at 1, valid budgets at 1), so omitempty cannot hide a
// load-bearing value.
type Request struct {
	Op     string `json:"op"`
	ID     int64  `json:"id,omitempty"`
	Budget int    `json:"budget,omitempty"`
}

// Response is one server frame. Exactly one of Error, Update, Stats is
// set for types error/update/stats; bye frames carry the type alone.
type Response struct {
	Type   string  `json:"type"` // "update" | "stats" | "error" | "bye"
	Error  string  `json:"error,omitempty"`
	Update *Update `json:"update,omitempty"`
	Stats  *Stats  `json:"stats,omitempty"`
}

// Update reports the re-equilibrated state after one accepted mutation.
// Every numeric field is load-bearing at zero (an empty game has zero
// users, a no-op budget change zero rounds), so nothing is omitempty.
type Update struct {
	// Event is the 1-based count of accepted mutations this session.
	Event int `json:"event"`
	// Op echoes the request op; ID is the affected user (the assigned id
	// for joins).
	Op string `json:"op"`
	ID int64  `json:"id"`
	// Users, Radios and Loads summarise the re-equilibrated allocation.
	Users  int   `json:"users"`
	Radios int   `json:"radios"`
	Loads  []int `json:"loads"`
	// Welfare is the allocation's total utility, Eq. 3 summed over users.
	Welfare float64 `json:"welfare"`
	// Convergence statistics of the warm-started re-equilibration.
	Rounds      int  `json:"rounds"`
	Moves       int  `json:"moves"`
	DPCalls     int  `json:"dp_calls"`
	WarmSkipped int  `json:"warm_skipped"`
	Converged   bool `json:"converged"`
	// Verified is true when the server re-proved the terminal allocation
	// is a Nash equilibrium with the exact oracle (config Verify).
	Verified bool `json:"verified"`
}

// Stats aggregates a session. Served on request op "stats".
type Stats struct {
	Events      int `json:"events"`
	Joins       int `json:"joins"`
	Leaves      int `json:"leaves"`
	BudgetOps   int `json:"budget_ops"`
	Moves       int `json:"moves"`
	DPCalls     int `json:"dp_calls"`
	WarmSkipped int `json:"warm_skipped"`
	Users       int `json:"users"`
	Radios      int `json:"radios"`
	// Obs embeds a flattened snapshot of the process-global metrics
	// registry when the server runs with Config.EmitObs (additive, off by
	// default: pinned golden transcripts never carry it). Counters and
	// gauges map name → value; histograms flatten to name_count/name_sum.
	// Go marshals the map key-sorted, so the field itself is diffable.
	Obs map[string]int64 `json:"obs,omitempty"`
}
