package live

import "sync"

// Totals aggregates session statistics across every server that shares it.
// A listening allocd builds one fresh Server (one fresh game) per
// connection, which used to reset the stats frame with each dial-in; wiring
// one Totals through Config makes the "stats" op report service-lifetime
// counters while Users/Radios still describe the answering connection's
// game. A nil Totals (the stdin/stdout and churn paths) keeps the
// per-server stats exactly as before, so golden transcripts are untouched.
type Totals struct {
	mu sync.Mutex
	s  Stats
}

// add folds one event's increments into the lifetime counters.
func (t *Totals) add(d Stats) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.s.Events += d.Events
	t.s.Joins += d.Joins
	t.s.Leaves += d.Leaves
	t.s.BudgetOps += d.BudgetOps
	t.s.Moves += d.Moves
	t.s.DPCalls += d.DPCalls
	t.s.WarmSkipped += d.WarmSkipped
	t.mu.Unlock()
}

// Snapshot returns a copy of the lifetime counters (Users/Radios zero —
// they belong to a single game, not the aggregate).
func (t *Totals) Snapshot() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.s
}
