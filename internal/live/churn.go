package live

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/multiradio/chanalloc/internal/des"
)

// ChurnSpec parameterises a synthetic churn trace: a birth–death process
// over users rendered as a protocol request stream. Arrivals are Poisson,
// lifetimes and budget-change gaps exponential — all drawn from one seeded
// SplitMix64 stream through the deterministic event simulator, so a spec
// maps to exactly one trace.
type ChurnSpec struct {
	// Channels bounds budgets; it is not embedded in the trace but callers
	// must serve the trace on a game with this many channels.
	Channels int
	// Initial users join at time zero before churn begins.
	Initial int
	// Events is the exact number of requests generated.
	Events int
	// MinBudget and MaxBudget bound the uniform budget draw (radios).
	MinBudget, MaxBudget int
	// Seed feeds the simulator's RNG.
	Seed uint64
	// ArrivalRate is the Poisson join rate; MeanLifetime the expected
	// session length (steady population ≈ ArrivalRate·MeanLifetime);
	// BudgetRate the per-user rate of budget renegotiations (0 disables).
	ArrivalRate  float64
	MeanLifetime float64
	BudgetRate   float64
}

// Validate checks the spec is generable.
func (spec ChurnSpec) Validate() error {
	if spec.Channels < 1 {
		return fmt.Errorf("live: churn channels = %d, want >= 1", spec.Channels)
	}
	if spec.Initial < 0 {
		return fmt.Errorf("live: churn initial = %d, want >= 0", spec.Initial)
	}
	if spec.Events < 1 {
		return fmt.Errorf("live: churn events = %d, want >= 1", spec.Events)
	}
	if spec.MinBudget < 1 || spec.MaxBudget < spec.MinBudget || spec.MaxBudget > spec.Channels {
		return fmt.Errorf("live: churn budgets [%d, %d] outside [1, %d]",
			spec.MinBudget, spec.MaxBudget, spec.Channels)
	}
	if spec.ArrivalRate <= 0 {
		return fmt.Errorf("live: churn arrival rate %v, want > 0", spec.ArrivalRate)
	}
	if spec.MeanLifetime <= 0 {
		return fmt.Errorf("live: churn mean lifetime %v, want > 0", spec.MeanLifetime)
	}
	if spec.BudgetRate < 0 {
		return fmt.Errorf("live: churn budget rate %v, want >= 0", spec.BudgetRate)
	}
	return nil
}

// DefaultChurnSpec fills the rate and budget parameters a compact spec
// string leaves open: budgets uniform over [1, min(channels, 4)], unit
// arrival rate, mean lifetime sized so the steady population matches the
// initial one, and a gentle budget renegotiation rate.
func DefaultChurnSpec(channels, initial, events int, seed uint64) ChurnSpec {
	maxBudget := channels
	if maxBudget > 4 {
		maxBudget = 4
	}
	life := float64(initial)
	if life <= 0 {
		life = 4
	}
	return ChurnSpec{
		Channels:     channels,
		Initial:      initial,
		Events:       events,
		MinBudget:    1,
		MaxBudget:    maxBudget,
		Seed:         seed,
		ArrivalRate:  1,
		MeanLifetime: life,
		BudgetRate:   0.25,
	}
}

// ParseChurnSpec parses the compact form "channels,initial,events[,seed]"
// (seed defaults to 1); the remaining parameters come from
// DefaultChurnSpec.
func ParseChurnSpec(s string) (ChurnSpec, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 && len(parts) != 4 {
		return ChurnSpec{}, fmt.Errorf("live: churn spec %q, want channels,initial,events[,seed]", s)
	}
	nums := make([]int, 3)
	for i := 0; i < 3; i++ {
		v, err := strconv.Atoi(strings.TrimSpace(parts[i]))
		if err != nil {
			return ChurnSpec{}, fmt.Errorf("live: churn spec %q: %w", s, err)
		}
		nums[i] = v
	}
	seed := uint64(1)
	if len(parts) == 4 {
		v, err := strconv.ParseUint(strings.TrimSpace(parts[3]), 10, 64)
		if err != nil {
			return ChurnSpec{}, fmt.Errorf("live: churn spec %q: %w", s, err)
		}
		seed = v
	}
	spec := DefaultChurnSpec(nums[0], nums[1], nums[2], seed)
	if err := spec.Validate(); err != nil {
		return ChurnSpec{}, err
	}
	return spec, nil
}

// GenerateTrace renders the spec as a request stream through the
// deterministic event simulator. The generator mirrors the server's id
// assignment — sequential from 1 per join — so leave and budget requests
// name ids the serving game will recognise. The trace holds exactly
// spec.Events mutation requests.
func GenerateTrace(spec ChurnSpec) ([]Request, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	sim := des.New(spec.Seed)
	rng := sim.RNG()
	trace := make([]Request, 0, spec.Events)
	live := make(map[int64]bool)
	var nextID int64

	emit := func(r Request) {
		trace = append(trace, r)
		if len(trace) >= spec.Events {
			sim.Stop()
		}
	}
	randBudget := func() int {
		return spec.MinBudget + rng.Intn(spec.MaxBudget-spec.MinBudget+1)
	}
	var renegotiate func(id int64) error
	renegotiate = func(id int64) error {
		_, err := sim.After(rng.ExpFloat64()/spec.BudgetRate, func(*des.Simulator) {
			if !live[id] {
				return
			}
			emit(Request{Op: "budget", ID: id, Budget: randBudget()})
			if err := renegotiate(id); err != nil {
				panic(err) // unreachable: delays are non-negative
			}
		})
		return err
	}
	admit := func(s *des.Simulator) error {
		nextID++
		id := nextID
		live[id] = true
		emit(Request{Op: "join", Budget: randBudget()})
		_, err := s.After(rng.ExpFloat64()*spec.MeanLifetime, func(*des.Simulator) {
			delete(live, id)
			emit(Request{Op: "leave", ID: id})
		})
		if err != nil {
			return err
		}
		if spec.BudgetRate > 0 {
			return renegotiate(id)
		}
		return nil
	}
	var arrive func(s *des.Simulator)
	arrive = func(s *des.Simulator) {
		if err := admit(s); err != nil {
			panic(err) // unreachable
		}
		if _, err := s.After(rng.ExpFloat64()/spec.ArrivalRate, arrive); err != nil {
			panic(err) // unreachable
		}
	}

	for i := 0; i < spec.Initial; i++ {
		if _, err := sim.Schedule(0, func(s *des.Simulator) {
			if err := admit(s); err != nil {
				panic(err)
			}
		}); err != nil {
			return nil, err
		}
	}
	if _, err := sim.After(rng.ExpFloat64()/spec.ArrivalRate, arrive); err != nil {
		return nil, err
	}
	if err := sim.RunAll(); err != nil && err != des.ErrStopped {
		return nil, err
	}
	if len(trace) != spec.Events {
		return nil, fmt.Errorf("live: trace underrun: %d of %d events", len(trace), spec.Events)
	}
	return trace, nil
}
