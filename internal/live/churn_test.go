package live

import (
	"reflect"
	"testing"
)

func TestParseChurnSpec(t *testing.T) {
	spec, err := ParseChurnSpec("4,6,200,99")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Channels != 4 || spec.Initial != 6 || spec.Events != 200 || spec.Seed != 99 {
		t.Fatalf("parsed %+v", spec)
	}
	if spec.MaxBudget != 4 || spec.MinBudget != 1 {
		t.Fatalf("default budgets [%d, %d], want [1, 4]", spec.MinBudget, spec.MaxBudget)
	}
	spec, err = ParseChurnSpec("8, 5, 50")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Seed != 1 || spec.MaxBudget != 4 {
		t.Fatalf("defaulted spec %+v, want seed 1, max budget 4", spec)
	}
	for _, bad := range []string{"", "4", "4,5", "4,5,6,7,8", "x,5,6", "4,5,0", "0,5,6", "4,-1,6", "4,5,6,-1"} {
		if _, err := ParseChurnSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

// TestGenerateTraceDeterministicAndValid pins the two properties the
// golden-transcript tests build on: same seed, same trace — and every
// leave/budget request names a user that is live at that point given
// sequential id assignment.
func TestGenerateTraceDeterministicAndValid(t *testing.T) {
	spec := DefaultChurnSpec(4, 6, 300, 0xC0FFEE)
	a, err := GenerateTrace(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateTrace(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same spec generated different traces")
	}
	if len(a) != spec.Events {
		t.Fatalf("trace has %d events, want %d", len(a), spec.Events)
	}

	other, err := GenerateTrace(DefaultChurnSpec(4, 6, 300, 0xDECAF))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, other) {
		t.Fatal("different seeds generated identical traces")
	}

	live := map[int64]bool{}
	var nextID int64
	kinds := map[string]int{}
	for i, req := range a {
		kinds[req.Op]++
		switch req.Op {
		case "join":
			if req.Budget < spec.MinBudget || req.Budget > spec.MaxBudget {
				t.Fatalf("event %d: join budget %d outside [%d, %d]", i, req.Budget, spec.MinBudget, spec.MaxBudget)
			}
			nextID++
			live[nextID] = true
		case "leave":
			if !live[req.ID] {
				t.Fatalf("event %d: leave names dead user %d", i, req.ID)
			}
			delete(live, req.ID)
		case "budget":
			if !live[req.ID] {
				t.Fatalf("event %d: budget names dead user %d", i, req.ID)
			}
			if req.Budget < spec.MinBudget || req.Budget > spec.MaxBudget {
				t.Fatalf("event %d: budget %d outside [%d, %d]", i, req.Budget, spec.MinBudget, spec.MaxBudget)
			}
		default:
			t.Fatalf("event %d: unexpected op %q", i, req.Op)
		}
	}
	// A 300-event birth–death trace at these rates exercises all three ops.
	for _, op := range []string{"join", "leave", "budget"} {
		if kinds[op] == 0 {
			t.Fatalf("trace has no %q events: %v", op, kinds)
		}
	}
}
