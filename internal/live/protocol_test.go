package live

import (
	"encoding/json"
	"testing"
)

// TestFrameBytes pins the wire encoding of every frame type. These are the
// bytes remote clients parse; a failing case here is a protocol break and
// needs a ProtocolVersion bump, not a test update.
func TestFrameBytes(t *testing.T) {
	for _, tc := range []struct {
		name string
		v    any
		want string
	}{
		{
			"hello",
			Hello{Type: "hello", Version: 1, Channels: 4, Rate: "tdma-54"},
			`{"type":"hello","version":1,"channels":4,"rate":"tdma-54"}`,
		},
		{
			"join request",
			Request{Op: "join", Budget: 2},
			`{"op":"join","budget":2}`,
		},
		{
			"leave request",
			Request{Op: "leave", ID: 7},
			`{"op":"leave","id":7}`,
		},
		{
			"budget request",
			Request{Op: "budget", ID: 7, Budget: 3},
			`{"op":"budget","id":7,"budget":3}`,
		},
		{
			"stats request",
			Request{Op: "stats"},
			`{"op":"stats"}`,
		},
		{
			"update response",
			Response{Type: "update", Update: &Update{
				Event: 3, Op: "join", ID: 2, Users: 2, Radios: 3,
				Loads: []int{1, 2, 0}, Welfare: 36, Rounds: 2, Moves: 1,
				DPCalls: 4, WarmSkipped: 1, Converged: true, Verified: true,
			}},
			`{"type":"update","update":{"event":3,"op":"join","id":2,"users":2,"radios":3,` +
				`"loads":[1,2,0],"welfare":36,"rounds":2,"moves":1,"dp_calls":4,` +
				`"warm_skipped":1,"converged":true,"verified":true}}`,
		},
		{
			"zero-valued update keeps load-bearing fields",
			Response{Type: "update", Update: &Update{Op: "leave", ID: 1, Loads: []int{0}}},
			`{"type":"update","update":{"event":0,"op":"leave","id":1,"users":0,"radios":0,` +
				`"loads":[0],"welfare":0,"rounds":0,"moves":0,"dp_calls":0,` +
				`"warm_skipped":0,"converged":false,"verified":false}}`,
		},
		{
			"error response",
			Response{Type: "error", Error: "unknown op \"x\""},
			`{"type":"error","error":"unknown op \"x\""}`,
		},
		{
			"stats response",
			Response{Type: "stats", Stats: &Stats{Events: 5, Joins: 3, Leaves: 1, BudgetOps: 1,
				Moves: 9, DPCalls: 30, WarmSkipped: 4, Users: 2, Radios: 5}},
			`{"type":"stats","stats":{"events":5,"joins":3,"leaves":1,"budget_ops":1,` +
				`"moves":9,"dp_calls":30,"warm_skipped":4,"users":2,"radios":5}}`,
		},
		{
			"bye response",
			Response{Type: "bye"},
			`{"type":"bye"}`,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, err := json.Marshal(tc.v)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != tc.want {
				t.Fatalf("frame bytes drifted:\n got %s\nwant %s", got, tc.want)
			}
		})
	}
}
