package live

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/multiradio/chanalloc/internal/core"
	"github.com/multiradio/chanalloc/internal/dynamics"
	"github.com/multiradio/chanalloc/internal/hetero"
	"github.com/multiradio/chanalloc/internal/obs"
	"github.com/multiradio/chanalloc/internal/ratefn"
)

// Config parameterises a Server.
type Config struct {
	// Channels is |C|; Rate the common rate function; RateName its
	// display form echoed in the hello frame.
	Channels int
	Rate     ratefn.Func
	RateName string
	// Workers bounds the parallel Nash-equilibrium verification fan-out;
	// < 1 means runtime.NumCPU(). The worker count NEVER affects output
	// bytes — verification is an AND-reduce over per-user verdicts.
	Workers int
	// Verify re-proves every re-equilibrated allocation with the exact
	// oracle and reports the verdict in each update frame.
	Verify bool
	// Eps and MaxRounds override the dynamics defaults when positive.
	Eps       float64
	MaxRounds int
	// Totals, when non-nil, aggregates session statistics across every
	// server sharing it (a listening daemon building one server per
	// connection); the "stats" op then reports the lifetime totals. Nil
	// keeps per-server stats — the byte-pinned transcript behaviour.
	Totals *Totals
	// EmitObs embeds a flattened snapshot of the process-global metrics
	// registry in each stats frame. Off by default so pinned transcripts
	// never carry runtime-dependent bytes.
	EmitObs bool
}

// Server owns one live game and speaks the NDJSON protocol over any
// reader/writer pair. It is single-conversation: events are serialised,
// parallelism lives inside verification (and the dynamics workspace is
// pooled). Not safe for concurrent Serve calls.
type Server struct {
	lg      *hetero.LiveGame
	cfg     Config
	dynOpts []dynamics.Option
	stats   Stats

	// writeMu serialises frame writes between Serve's loop and Interrupt;
	// enc is the live conversation's encoder (nil outside Serve). Once
	// interrupted is set, Serve writes nothing more — the bye Interrupt
	// sent is the conversation's last frame.
	writeMu     sync.Mutex
	enc         *json.Encoder
	interrupted bool
}

// NewServer builds a server with an empty live game.
func NewServer(cfg Config) (*Server, error) {
	lg, err := hetero.NewLiveGame(cfg.Channels, cfg.Rate)
	if err != nil {
		return nil, err
	}
	if cfg.Workers < 1 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.RateName == "" {
		cfg.RateName = cfg.Rate.Name()
	}
	var opts []dynamics.Option
	if cfg.Eps > 0 {
		opts = append(opts, dynamics.WithEps(cfg.Eps))
	}
	if cfg.MaxRounds > 0 {
		opts = append(opts, dynamics.WithMaxRounds(cfg.MaxRounds))
	}
	return &Server{lg: lg, cfg: cfg, dynOpts: opts}, nil
}

// Game exposes the underlying live game (read-only for callers).
func (s *Server) Game() *hetero.LiveGame { return s.lg }

// Stats returns a copy of the cumulative session statistics — this
// server's own, or the shared lifetime totals when Config.Totals is set.
// Users and Radios always describe this server's current game.
func (s *Server) Stats() Stats {
	out := s.stats
	if s.cfg.Totals != nil {
		out = s.cfg.Totals.Snapshot()
	}
	out.Users = s.lg.Users()
	if a := s.lg.Alloc(); a != nil {
		out.Radios = a.TotalRadios()
	}
	if s.cfg.EmitObs {
		out.Obs = obs.Flat(obs.Snapshot())
	}
	return out
}

// Serve runs one NDJSON conversation: hello first, then one response line
// per request line until EOF, a bye request, a transport error, or an
// Interrupt. Invalid requests get error frames and the conversation
// continues — a malformed line is a client bug worth reporting, not a
// reason to drop a live allocation service.
func (s *Server) Serve(r io.Reader, w io.Writer) error {
	enc := json.NewEncoder(frameCounter{w})
	s.writeMu.Lock()
	s.enc = enc
	s.writeMu.Unlock()
	defer func() {
		s.writeMu.Lock()
		s.enc = nil
		s.writeMu.Unlock()
	}()
	if err := s.send(Hello{
		Type:     "hello",
		Version:  ProtocolVersion,
		Channels: s.cfg.Channels,
		Rate:     s.cfg.RateName,
	}); err != nil {
		if s.Interrupted() {
			return nil
		}
		return fmt.Errorf("live: writing hello: %w", err)
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		if s.Interrupted() {
			return nil
		}
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req Request
		if err := json.Unmarshal(line, &req); err != nil {
			if err := s.send(Response{Type: "error", Error: fmt.Sprintf("bad frame: %v", err)}); err != nil {
				if s.Interrupted() {
					return nil
				}
				return err
			}
			continue
		}
		if req.Op == "bye" {
			if err := s.send(Response{Type: "bye"}); err != nil && !s.Interrupted() {
				return err
			}
			return nil
		}
		resp := s.Apply(req)
		if err := s.send(resp); err != nil {
			if s.Interrupted() {
				return nil
			}
			return err
		}
	}
	if s.Interrupted() {
		return nil
	}
	return sc.Err()
}

// send writes one frame under the write mutex. Once the server is
// interrupted nothing more is written — the interrupt's bye frame stays
// the conversation's last — and errSendInterrupted is returned so callers
// can tell the suppressed write from a transport failure.
func (s *Server) send(frame any) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if s.interrupted {
		return errSendInterrupted
	}
	return s.enc.Encode(frame)
}

var errSendInterrupted = fmt.Errorf("live: conversation interrupted")

// Interrupt ends the conversation from outside Serve — the graceful-
// shutdown path of a listening daemon: a bye frame is sent (best effort,
// serialised against Serve's own writes) and Serve writes nothing more,
// returning nil as soon as its reader unblocks (typically when the caller
// closes the connection after the drain grace). Safe to call at any time,
// from any goroutine, more than once.
func (s *Server) Interrupt() {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if s.interrupted {
		return
	}
	s.interrupted = true
	if s.enc != nil {
		_ = s.enc.Encode(Response{Type: "bye"})
	}
}

// Interrupted reports whether Interrupt has been called.
func (s *Server) Interrupted() bool {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	return s.interrupted
}

// Apply executes one request against the live game and builds its
// response frame. Mutation ops re-equilibrate before answering, so every
// update frame describes a settled allocation.
func (s *Server) Apply(req Request) Response {
	start := time.Now()
	var id hetero.UserID
	delta := Stats{Events: 1}
	switch req.Op {
	case "stats":
		mStatsOps.Inc()
		st := s.Stats()
		return Response{Type: "stats", Stats: &st}
	case "join":
		jid, err := s.lg.Join(req.Budget)
		if err != nil {
			mErrors.Inc()
			return Response{Type: "error", Error: err.Error()}
		}
		id = jid
		s.stats.Joins++
		delta.Joins = 1
		mJoins.Inc()
	case "leave":
		if err := s.lg.Leave(hetero.UserID(req.ID)); err != nil {
			mErrors.Inc()
			return Response{Type: "error", Error: err.Error()}
		}
		id = hetero.UserID(req.ID)
		s.stats.Leaves++
		delta.Leaves = 1
		mLeaves.Inc()
	case "budget":
		if err := s.lg.SetBudget(hetero.UserID(req.ID), req.Budget); err != nil {
			mErrors.Inc()
			return Response{Type: "error", Error: err.Error()}
		}
		id = hetero.UserID(req.ID)
		s.stats.BudgetOps++
		delta.BudgetOps = 1
		mBudgetOps.Inc()
	default:
		mErrors.Inc()
		return Response{Type: "error", Error: fmt.Sprintf("unknown op %q", req.Op)}
	}

	ws := core.Workspaces.Get()
	opts := append(append([]dynamics.Option(nil), s.dynOpts...), dynamics.WithWorkspace(ws))
	res, err := dynamics.Requilibrate(s.lg, opts...)
	core.Workspaces.Put(ws)
	if err != nil {
		mErrors.Inc()
		return Response{Type: "error", Error: fmt.Sprintf("requilibrate: %v", err)}
	}
	s.stats.Events++
	s.stats.Moves += res.Moves
	s.stats.DPCalls += res.DPCalls
	s.stats.WarmSkipped += res.WarmSkipped
	delta.Moves = res.Moves
	delta.DPCalls = res.DPCalls
	delta.WarmSkipped = res.WarmSkipped
	s.cfg.Totals.add(delta)
	mEvents.Inc()
	mConvRounds.Observe(int64(res.Rounds))
	mEventLat.Observe(int64(time.Since(start)))
	obs.Emit("churn", req.Op, int64(s.stats.Events), int64(id), 0)

	u := &Update{
		Event:       s.stats.Events,
		Op:          req.Op,
		ID:          int64(id),
		Users:       s.lg.Users(),
		Loads:       make([]int, s.cfg.Channels),
		Rounds:      res.Rounds,
		Moves:       res.Moves,
		DPCalls:     res.DPCalls,
		WarmSkipped: res.WarmSkipped,
		Converged:   res.Converged,
	}
	if a := s.lg.Alloc(); a != nil {
		copy(u.Loads, a.Loads())
		u.Radios = a.TotalRadios()
		u.Welfare = s.lg.Frozen().Welfare(a)
		if s.cfg.Verify {
			u.Verified = s.verifyNE()
		}
	} else if s.cfg.Verify {
		u.Verified = true // the empty allocation is trivially an equilibrium
	}
	return Response{Type: "update", Update: u}
}

// verifyNE re-proves the current allocation is a Nash equilibrium with the
// exact per-user best-response oracle, sharding users over the configured
// workers. Each worker borrows a pooled DP workspace; the verdict is an
// AND-reduce over independent per-user checks, so it is identical at any
// worker count and the early exit on a found deviation only saves time.
func (s *Server) verifyNE() bool {
	g := s.lg.Frozen()
	a := s.lg.Alloc()
	if g == nil {
		return true
	}
	n := g.Users()
	workers := s.cfg.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		ws := core.Workspaces.Get()
		defer core.Workspaces.Put(ws)
		return verifyRange(g, a, ws, 0, n, nil)
	}
	var refuted atomic.Bool
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			ws := core.Workspaces.Get()
			defer core.Workspaces.Put(ws)
			if !verifyRange(g, a, ws, lo, hi, &refuted) {
				refuted.Store(true)
			}
		}(lo, hi)
	}
	wg.Wait()
	return !refuted.Load()
}

// verifyRange checks users [lo, hi) have no improving deviation at the
// oracle tolerance. A non-nil refuted flag allows cross-shard early exit.
func verifyRange(g *hetero.Game, a *core.Alloc, ws *core.Workspace, lo, hi int, refuted *atomic.Bool) bool {
	for i := lo; i < hi; i++ {
		if refuted != nil && refuted.Load() {
			return true // some other shard already decided; verdict unaffected
		}
		current := g.Utility(a, i)
		_, best, err := g.BestResponseInto(ws, a, i)
		if err != nil || best > current+core.DefaultEps {
			return false
		}
	}
	return true
}
