package live

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer lets the test read what Serve has written so far without
// racing the server goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestInterruptSendsByeAndServeReturnsNil: Interrupt mid-conversation sends
// one bye frame, suppresses every later write, and Serve returns nil once
// its reader unblocks — the graceful-shutdown contract a listening daemon
// builds on.
func TestInterruptSendsByeAndServeReturnsNil(t *testing.T) {
	s := newTestServer(t, 1)
	pr, pw := io.Pipe()
	var out syncBuffer
	done := make(chan error, 1)
	go func() { done <- s.Serve(pr, &out) }()

	if _, err := pw.Write([]byte(`{"op":"join","budget":2}` + "\n")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(out.String(), `"type":"update"`) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !strings.Contains(out.String(), `"type":"update"`) {
		t.Fatalf("no update frame before interrupt; output: %q", out.String())
	}

	s.Interrupt()
	if !s.Interrupted() {
		t.Fatal("Interrupted() false after Interrupt")
	}
	s.Interrupt() // idempotent: no second bye

	// A request arriving after the interrupt produces no frame.
	if _, err := pw.Write([]byte(`{"op":"stats"}` + "\n")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	pw.Close() // unblocks the scanner; Serve must return nil
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve after interrupt: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after its reader closed")
	}

	lines := strings.Split(strings.TrimSuffix(out.String(), "\n"), "\n")
	last := lines[len(lines)-1]
	var resp Response
	if err := json.Unmarshal([]byte(last), &resp); err != nil || resp.Type != "bye" {
		t.Fatalf("last frame %q, want the interrupt's bye", last)
	}
	byes := strings.Count(out.String(), `{"type":"bye"}`)
	if byes != 1 {
		t.Fatalf("%d bye frames, want exactly 1", byes)
	}
}

// TestInterruptBeforeServe: a server interrupted before Serve starts writes
// nothing — not even the hello — and returns nil immediately.
func TestInterruptBeforeServe(t *testing.T) {
	s := newTestServer(t, 1)
	s.Interrupt()
	var out syncBuffer
	if err := s.Serve(strings.NewReader(""), &out); err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if out.String() != "" {
		t.Fatalf("interrupted-before-serve wrote %q", out.String())
	}
}
