package live

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/multiradio/chanalloc/internal/ratefn"
)

func newTestServer(t *testing.T, workers int) *Server {
	t.Helper()
	s, err := NewServer(Config{
		Channels: 4,
		Rate:     ratefn.NewTDMA(54),
		RateName: "tdma:54",
		Workers:  workers,
		Verify:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// traceBytes renders a request trace as NDJSON client input.
func traceBytes(t *testing.T, trace []Request) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, req := range trace {
		if err := enc.Encode(req); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestServeTraceDeterministicAcrossWorkers is the protocol-level
// determinism pin: the same seeded churn trace produces byte-identical
// server output at any worker count — parallel NE verification is an
// AND-reduce and never shows in the frames.
func TestServeTraceDeterministicAcrossWorkers(t *testing.T) {
	trace, err := GenerateTrace(DefaultChurnSpec(4, 5, 120, 7))
	if err != nil {
		t.Fatal(err)
	}
	in := traceBytes(t, append(trace, Request{Op: "stats"}, Request{Op: "bye"}))

	var outputs [][]byte
	for _, workers := range []int{1, 2, 8} {
		s := newTestServer(t, workers)
		var out bytes.Buffer
		if err := s.Serve(bytes.NewReader(in), &out); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		outputs = append(outputs, out.Bytes())
	}
	for i := 1; i < len(outputs); i++ {
		if !bytes.Equal(outputs[0], outputs[i]) {
			t.Fatalf("server output differs between worker counts 1 and %d", []int{1, 2, 8}[i])
		}
	}

	// Every update frame in the transcript is settled and verified.
	lines := strings.Split(strings.TrimSpace(string(outputs[0])), "\n")
	var hello Hello
	if err := json.Unmarshal([]byte(lines[0]), &hello); err != nil {
		t.Fatal(err)
	}
	if hello.Type != "hello" || hello.Version != ProtocolVersion || hello.Channels != 4 || hello.Rate != "tdma:54" {
		t.Fatalf("hello frame = %+v", hello)
	}
	updates, statsSeen, byeSeen := 0, false, false
	for _, line := range lines[1:] {
		var resp Response
		if err := json.Unmarshal([]byte(line), &resp); err != nil {
			t.Fatal(err)
		}
		switch resp.Type {
		case "update":
			updates++
			u := resp.Update
			if u == nil || !u.Converged || !u.Verified {
				t.Fatalf("unsettled update frame: %s", line)
			}
			if u.Event != updates {
				t.Fatalf("event counter %d on update %d", u.Event, updates)
			}
		case "stats":
			statsSeen = true
			if resp.Stats.Events != updates {
				t.Fatalf("stats count %d events, transcript has %d updates", resp.Stats.Events, updates)
			}
			if resp.Stats.DPCalls < 1 || resp.Stats.WarmSkipped < 1 {
				t.Fatalf("stats missing convergence work: %+v", resp.Stats)
			}
		case "bye":
			byeSeen = true
		case "error":
			t.Fatalf("error frame on a valid trace: %s", line)
		default:
			t.Fatalf("unknown frame type %q", resp.Type)
		}
	}
	if updates != len(trace) || !statsSeen || !byeSeen {
		t.Fatalf("transcript had %d updates (want %d), stats=%v bye=%v",
			updates, len(trace), statsSeen, byeSeen)
	}
}

// TestServeErrorFrames pins the failure paths: bad JSON, unknown ops and
// invalid mutations produce error frames without ending the conversation
// or corrupting the game.
func TestServeErrorFrames(t *testing.T) {
	s := newTestServer(t, 1)
	in := strings.Join([]string{
		`{"op":"join","budget":2}`,
		`not json`,
		`{"op":"teleport"}`,
		`{"op":"leave","id":42}`,
		`{"op":"join","budget":0}`,
		`{"op":"budget","id":1,"k":0}`,
		`{"op":"join","budget":1}`,
	}, "\n") + "\n"
	var out bytes.Buffer
	if err := s.Serve(strings.NewReader(in), &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	wantTypes := []string{"hello", "update", "error", "error", "error", "error", "error", "update"}
	if len(lines) != len(wantTypes) {
		t.Fatalf("got %d frames, want %d:\n%s", len(lines), len(wantTypes), out.String())
	}
	for i, line := range lines {
		var frame struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal([]byte(line), &frame); err != nil {
			t.Fatal(err)
		}
		if frame.Type != wantTypes[i] {
			t.Fatalf("frame %d is %q, want %q: %s", i, frame.Type, wantTypes[i], line)
		}
	}
	if s.Game().Users() != 2 {
		t.Fatalf("game has %d users after 2 good joins, want 2", s.Game().Users())
	}
}

// TestApplyJoinAssignsSequentialIDs pins the id contract the churn
// generator mirrors: sequential from 1, never reused.
func TestApplyJoinAssignsSequentialIDs(t *testing.T) {
	s := newTestServer(t, 1)
	for want := int64(1); want <= 3; want++ {
		resp := s.Apply(Request{Op: "join", Budget: 1})
		if resp.Type != "update" || resp.Update.ID != want {
			t.Fatalf("join %d -> %+v", want, resp)
		}
	}
	if resp := s.Apply(Request{Op: "leave", ID: 2}); resp.Type != "update" {
		t.Fatalf("leave -> %+v", resp)
	}
	// The freed id is not recycled.
	if resp := s.Apply(Request{Op: "join", Budget: 1}); resp.Update.ID != 4 {
		t.Fatalf("join after leave assigned id %d, want 4", resp.Update.ID)
	}
}
