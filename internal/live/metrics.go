package live

import (
	"io"

	"github.com/multiradio/chanalloc/internal/obs"
)

// Live-service metrics: every increment sits on the per-event path (a
// re-equilibration is milliseconds) or the per-frame write, so plain
// atomic counters cost nothing measurable. Nothing here feeds back into
// event handling — transcripts stay byte-identical with metrics on.
var (
	mEvents     = obs.NewCounter("live_events_total")
	mJoins      = obs.NewCounter("live_joins_total")
	mLeaves     = obs.NewCounter("live_leaves_total")
	mBudgetOps  = obs.NewCounter("live_budget_ops_total")
	mStatsOps   = obs.NewCounter("live_stats_ops_total")
	mErrors     = obs.NewCounter("live_errors_total")
	mFrameBytes = obs.NewCounter("live_frame_bytes_total")
	mConvRounds = obs.NewHistogram("live_convergence_rounds", obs.SmallCountBuckets)
	mEventLat   = obs.NewHistogram("live_event_latency_ns", obs.LatencyBucketsNS)
)

// frameCounter counts response bytes as they hit the transport. It writes
// through unmodified — the counter observes the stream, never shapes it.
type frameCounter struct{ w io.Writer }

func (f frameCounter) Write(p []byte) (int, error) {
	n, err := f.w.Write(p)
	mFrameBytes.Add(uint64(n))
	return n, err
}
