package live

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/multiradio/chanalloc/internal/ratefn"
)

func testConfig(workers int) Config {
	return Config{
		Channels: 4,
		Rate:     ratefn.NewTDMA(54),
		RateName: "tdma:54",
		Workers:  workers,
		Verify:   true,
	}
}

// lastStats decodes the final stats frame of a transcript.
func lastStats(t *testing.T, transcript []byte) Stats {
	t.Helper()
	var st *Stats
	for _, line := range bytes.Split(transcript, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var resp Response
		if err := json.Unmarshal(line, &resp); err != nil {
			t.Fatalf("bad frame %q: %v", line, err)
		}
		if resp.Type == "stats" {
			st = resp.Stats
		}
	}
	if st == nil {
		t.Fatal("no stats frame in transcript")
	}
	return *st
}

// TestTotalsAggregateAcrossServers pins the listener-stats fix: two
// servers sharing one Totals (the per-connection shape of a listening
// allocd) report lifetime counters in their stats frames, while Users
// still describes each server's own game.
func TestTotalsAggregateAcrossServers(t *testing.T) {
	cfg := testConfig(1)
	cfg.Totals = &Totals{}

	serve := func(reqs []Request) Stats {
		s, err := NewServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		in := traceBytes(t, append(reqs, Request{Op: "stats"}, Request{Op: "bye"}))
		if err := s.Serve(bytes.NewReader(in), &out); err != nil {
			t.Fatal(err)
		}
		return lastStats(t, out.Bytes())
	}

	first := serve([]Request{{Op: "join", Budget: 2}, {Op: "join", Budget: 1}})
	if first.Events != 2 || first.Joins != 2 {
		t.Fatalf("first connection: got %+v, want 2 events / 2 joins", first)
	}
	if first.Users != 2 {
		t.Fatalf("first connection: users = %d, want 2", first.Users)
	}

	second := serve([]Request{{Op: "join", Budget: 3}})
	if second.Events != 3 || second.Joins != 3 {
		t.Fatalf("second connection must see lifetime totals, got %+v", second)
	}
	if second.Users != 1 {
		t.Fatalf("second connection: users = %d, want its own game's 1", second.Users)
	}
}

// TestStatsObsFieldGated pins the protocol-additivity rule: without
// EmitObs no stats frame carries an "obs" key (golden transcripts stay
// byte-identical), with it the flattened registry snapshot appears.
func TestStatsObsFieldGated(t *testing.T) {
	run := func(emit bool) string {
		cfg := testConfig(1)
		cfg.EmitObs = emit
		s, err := NewServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		in := traceBytes(t, []Request{
			{Op: "join", Budget: 2}, {Op: "stats"}, {Op: "bye"},
		})
		var out bytes.Buffer
		if err := s.Serve(bytes.NewReader(in), &out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}

	if got := run(false); strings.Contains(got, `"obs"`) {
		t.Fatalf("obs field leaked into an ungated transcript:\n%s", got)
	}
	got := run(true)
	if !strings.Contains(got, `"obs"`) {
		t.Fatalf("EmitObs set but no obs field in stats frame:\n%s", got)
	}
	if !strings.Contains(got, "live_events_total") {
		t.Fatalf("obs snapshot missing live counters:\n%s", got)
	}
}
