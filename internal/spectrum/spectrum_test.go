package spectrum

import (
	"math"
	"strings"
	"testing"

	"github.com/multiradio/chanalloc/internal/core"
	"github.com/multiradio/chanalloc/internal/hetero"
	"github.com/multiradio/chanalloc/internal/ratefn"
)

func TestBandValidate(t *testing.T) {
	if err := ISM2400().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := UNII5GHz().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Band{
		{Name: "x", StartMHz: 100, ChannelWidthMHz: 5, NumChannels: 0},
		{Name: "x", StartMHz: 100, ChannelWidthMHz: 0, NumChannels: 3},
		{Name: "x", StartMHz: 0, ChannelWidthMHz: 5, NumChannels: 3},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("band %d should be invalid", i)
		}
	}
}

func TestChannelFrequencies(t *testing.T) {
	b := UNII5GHz()
	first, err := b.Channel(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(first.CenterMHz-5180) > 1e-9 {
		t.Errorf("channel 36 center = %v, want 5180", first.CenterMHz)
	}
	last, err := b.Channel(7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(last.CenterMHz-5320) > 1e-9 {
		t.Errorf("channel 64 center = %v, want 5320", last.CenterMHz)
	}
	if !strings.Contains(first.String(), "5180") {
		t.Errorf("channel string %q missing frequency", first.String())
	}
}

func TestChannelErrors(t *testing.T) {
	b := ISM2400()
	if _, err := b.Channel(-1); err == nil {
		t.Error("negative channel should error")
	}
	if _, err := b.Channel(3); err == nil {
		t.Error("out-of-range channel should error")
	}
	var invalid Band
	if _, err := invalid.Channel(0); err == nil {
		t.Error("invalid band should error")
	}
}

func devices(counts ...int) []Device {
	out := make([]Device, len(counts))
	for i, k := range counts {
		out[i] = Device{ID: string(rune('a' + i)), Radios: k}
	}
	return out
}

func TestNewDeploymentValidation(t *testing.T) {
	b := UNII5GHz()
	if _, err := NewDeployment(b, nil); err == nil {
		t.Error("no devices should error")
	}
	if _, err := NewDeployment(b, []Device{{ID: "", Radios: 1}}); err == nil {
		t.Error("empty ID should error")
	}
	if _, err := NewDeployment(b, []Device{{ID: "a", Radios: 1}, {ID: "a", Radios: 1}}); err == nil {
		t.Error("duplicate ID should error")
	}
	if _, err := NewDeployment(b, devices(0)); err == nil {
		t.Error("zero radios should error")
	}
	if _, err := NewDeployment(b, devices(9)); err == nil {
		t.Error("radios > channels should error")
	}
	var invalid Band
	if _, err := NewDeployment(invalid, devices(1)); err == nil {
		t.Error("invalid band should error")
	}
}

func TestDeploymentGameUniform(t *testing.T) {
	d, err := NewDeployment(UNII5GHz(), devices(3, 3, 3, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Uniform() {
		t.Fatal("deployment should be uniform")
	}
	g, err := d.Game(ratefn.NewTDMA(54))
	if err != nil {
		t.Fatal(err)
	}
	if g.Users() != 4 || g.Channels() != 8 || g.Radios() != 3 {
		t.Fatalf("game dims %dx%dx%d", g.Users(), g.Channels(), g.Radios())
	}
}

func TestDeploymentGameMixedRejected(t *testing.T) {
	d, err := NewDeployment(UNII5GHz(), devices(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	if d.Uniform() {
		t.Fatal("deployment should be mixed")
	}
	if _, err := d.Game(ratefn.NewTDMA(1)); err == nil {
		t.Fatal("mixed radio counts should require HeteroGame")
	}
	hg, err := d.HeteroGame(ratefn.NewTDMA(1))
	if err != nil {
		t.Fatal(err)
	}
	if hg.Budget(0) != 3 || hg.Budget(1) != 2 {
		t.Fatal("hetero budgets wrong")
	}
}

func TestAssignmentsRoundTrip(t *testing.T) {
	d, err := NewDeployment(UNII5GHz(), devices(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	g, err := d.Game(ratefn.NewTDMA(1))
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := core.Algorithm1(g)
	if err != nil {
		t.Fatal(err)
	}
	assignments, err := d.Assignments(alloc)
	if err != nil {
		t.Fatal(err)
	}
	if len(assignments) != 6 {
		t.Fatalf("%d assignments, want 6", len(assignments))
	}
	// Per-device radio indices are 0..k-1 and channel loads match.
	loads := make(map[int]int)
	radioSeen := make(map[string]map[int]bool)
	for _, as := range assignments {
		loads[as.Channel.Index]++
		if radioSeen[as.DeviceID] == nil {
			radioSeen[as.DeviceID] = make(map[int]bool)
		}
		if radioSeen[as.DeviceID][as.Radio] {
			t.Fatalf("duplicate radio index in %v", as)
		}
		radioSeen[as.DeviceID][as.Radio] = true
		if as.String() == "" {
			t.Fatal("empty assignment string")
		}
	}
	for c := 0; c < alloc.Channels(); c++ {
		if loads[c] != alloc.Load(c) {
			t.Fatalf("channel %d: %d assignments vs load %d", c, loads[c], alloc.Load(c))
		}
	}
}

func TestAssignmentsHeteroNE(t *testing.T) {
	// End-to-end: mixed deployment -> hetero game -> greedy allocation ->
	// frequencies, with the allocation verified as NE.
	d, err := NewDeployment(UNII5GHz(), devices(4, 2, 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	hg, err := d.HeteroGame(ratefn.NewTDMA(1))
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := hetero.Algorithm1(hg, core.TieFirst, 0)
	if err != nil {
		t.Fatal(err)
	}
	ne, err := hg.IsNashEquilibrium(alloc)
	if err != nil {
		t.Fatal(err)
	}
	if !ne {
		t.Fatal("hetero deployment allocation not NE")
	}
	assignments, err := d.Assignments(alloc)
	if err != nil {
		t.Fatal(err)
	}
	if len(assignments) != 10 {
		t.Fatalf("%d assignments, want 10", len(assignments))
	}
}

func TestAssignmentsErrors(t *testing.T) {
	d, err := NewDeployment(ISM2400(), devices(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Assignments(nil); err == nil {
		t.Error("nil alloc should error")
	}
	wrong, err := core.NewAlloc(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Assignments(wrong); err == nil {
		t.Error("mismatched dims should error")
	}
	over, err := core.AllocFromMatrix([][]int{
		{2, 1, 0}, // 3 radios, device owns 2
		{0, 0, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Assignments(over); err == nil {
		t.Error("over-budget assignment should error")
	}
}

func TestDevicesCopy(t *testing.T) {
	d, err := NewDeployment(ISM2400(), devices(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	devs := d.Devices()
	devs[0].Radios = 99
	if d.Devices()[0].Radios == 99 {
		t.Fatal("Devices returned aliased storage")
	}
}
