// Package spectrum models the physical side of the allocation problem:
// frequency bands divided into orthogonal channels, multi-radio devices,
// and the mapping from a game-theoretic strategy matrix to concrete
// radio-to-channel assignments.
//
// The game (package core) deals in abstract channel indices; this package
// gives those indices frequencies and owners so that examples and tools can
// print deployments a network engineer would recognise.
package spectrum

import (
	"fmt"

	"github.com/multiradio/chanalloc/internal/core"
	"github.com/multiradio/chanalloc/internal/hetero"
	"github.com/multiradio/chanalloc/internal/ratefn"
)

// Band is a frequency band split into equal-width orthogonal channels
// (the paper's FDMA assumption).
type Band struct {
	// Name labels the band ("2.4 GHz ISM", ...).
	Name string
	// StartMHz is the lower edge of the first channel.
	StartMHz float64
	// ChannelWidthMHz is the width of each channel.
	ChannelWidthMHz float64
	// NumChannels is |C|.
	NumChannels int
}

// Validate checks band sanity.
func (b Band) Validate() error {
	switch {
	case b.NumChannels < 1:
		return fmt.Errorf("spectrum: band %q has %d channels, want >= 1", b.Name, b.NumChannels)
	case b.ChannelWidthMHz <= 0:
		return fmt.Errorf("spectrum: band %q channel width %v MHz, want > 0", b.Name, b.ChannelWidthMHz)
	case b.StartMHz <= 0:
		return fmt.Errorf("spectrum: band %q starts at %v MHz, want > 0", b.Name, b.StartMHz)
	}
	return nil
}

// Channel is one orthogonal channel of a band.
type Channel struct {
	Index     int // 0-based channel index
	CenterMHz float64
	WidthMHz  float64
}

// Channel returns channel i of the band.
func (b Band) Channel(i int) (Channel, error) {
	if err := b.Validate(); err != nil {
		return Channel{}, err
	}
	if i < 0 || i >= b.NumChannels {
		return Channel{}, fmt.Errorf("spectrum: channel %d out of range [0, %d)", i, b.NumChannels)
	}
	return Channel{
		Index:     i,
		CenterMHz: b.StartMHz + (float64(i)+0.5)*b.ChannelWidthMHz,
		WidthMHz:  b.ChannelWidthMHz,
	}, nil
}

// String renders the channel as "c3 @ 2422.0 MHz".
func (c Channel) String() string {
	return fmt.Sprintf("c%d @ %.1f MHz", c.Index+1, c.CenterMHz)
}

// ISM2400 returns the 2.4 GHz ISM band modelled as its three orthogonal
// 802.11b channels (1, 6, 11 -> 22 MHz wide).
func ISM2400() Band {
	return Band{Name: "2.4 GHz ISM (orthogonal)", StartMHz: 2401, ChannelWidthMHz: 22, NumChannels: 3}
}

// UNII5GHz returns a U-NII 5 GHz band with eight orthogonal 20 MHz channels
// (36..64).
func UNII5GHz() Band {
	return Band{Name: "5 GHz U-NII-1/2", StartMHz: 5170, ChannelWidthMHz: 20, NumChannels: 8}
}

// Device is a multi-radio node.
type Device struct {
	// ID is a stable identifier ("mesh-router-3").
	ID string
	// Radios is the device's radio count k_i.
	Radios int
}

// Deployment binds devices to a band.
type Deployment struct {
	band    Band
	devices []Device
}

// NewDeployment validates devices against the band: every device needs
// 1 <= Radios <= NumChannels (the paper's k <= |C|), a non-empty unique ID.
func NewDeployment(band Band, devices []Device) (*Deployment, error) {
	if err := band.Validate(); err != nil {
		return nil, err
	}
	if len(devices) == 0 {
		return nil, fmt.Errorf("spectrum: no devices")
	}
	seen := make(map[string]bool, len(devices))
	for i, d := range devices {
		if d.ID == "" {
			return nil, fmt.Errorf("spectrum: device %d has empty ID", i)
		}
		if seen[d.ID] {
			return nil, fmt.Errorf("spectrum: duplicate device ID %q", d.ID)
		}
		seen[d.ID] = true
		if d.Radios < 1 {
			return nil, fmt.Errorf("spectrum: device %q has %d radios, want >= 1", d.ID, d.Radios)
		}
		if d.Radios > band.NumChannels {
			return nil, fmt.Errorf("spectrum: device %q has %d radios for %d channels (paper requires k <= |C|)",
				d.ID, d.Radios, band.NumChannels)
		}
	}
	return &Deployment{band: band, devices: append([]Device(nil), devices...)}, nil
}

// Band returns the deployment's band.
func (d *Deployment) Band() Band { return d.band }

// Devices returns a copy of the device list.
func (d *Deployment) Devices() []Device { return append([]Device(nil), d.devices...) }

// Uniform reports whether every device has the same radio count.
func (d *Deployment) Uniform() bool {
	first := d.devices[0].Radios
	for _, dev := range d.devices[1:] {
		if dev.Radios != first {
			return false
		}
	}
	return true
}

// Game builds the paper's uniform-k game for this deployment. It errors if
// radio counts differ across devices; use HeteroGame then.
func (d *Deployment) Game(rate ratefn.Func) (*core.Game, error) {
	if !d.Uniform() {
		return nil, fmt.Errorf("spectrum: devices have mixed radio counts; use HeteroGame")
	}
	return core.NewGame(len(d.devices), d.band.NumChannels, d.devices[0].Radios, rate)
}

// HeteroGame builds the heterogeneous-budget game for this deployment.
func (d *Deployment) HeteroGame(rate ratefn.Func) (*hetero.Game, error) {
	budgets := make([]int, len(d.devices))
	for i, dev := range d.devices {
		budgets[i] = dev.Radios
	}
	return hetero.NewGame(d.band.NumChannels, budgets, rate)
}

// Assignment maps one radio of one device to a concrete channel.
type Assignment struct {
	DeviceID string
	Radio    int // 0-based radio index within the device
	Channel  Channel
}

// String renders the assignment as "mesh-router-3 radio 2 -> c4 @ 5230.0 MHz".
func (a Assignment) String() string {
	return fmt.Sprintf("%s radio %d -> %s", a.DeviceID, a.Radio, a.Channel)
}

// Assignments translates a strategy matrix into per-radio channel
// assignments, in device order. The allocation must match the deployment's
// dimensions and budgets.
func (d *Deployment) Assignments(a *core.Alloc) ([]Assignment, error) {
	if a == nil {
		return nil, fmt.Errorf("spectrum: nil allocation")
	}
	if a.Users() != len(d.devices) || a.Channels() != d.band.NumChannels {
		return nil, fmt.Errorf("spectrum: allocation is %dx%d, deployment is %dx%d",
			a.Users(), a.Channels(), len(d.devices), d.band.NumChannels)
	}
	var out []Assignment
	for i, dev := range d.devices {
		if total := a.UserTotal(i); total > dev.Radios {
			return nil, fmt.Errorf("spectrum: device %q assigned %d radios, owns %d", dev.ID, total, dev.Radios)
		}
		radio := 0
		for c := 0; c < a.Channels(); c++ {
			for r := 0; r < a.Radios(i, c); r++ {
				ch, err := d.band.Channel(c)
				if err != nil {
					return nil, err
				}
				out = append(out, Assignment{DeviceID: dev.ID, Radio: radio, Channel: ch})
				radio++
			}
		}
	}
	return out, nil
}
