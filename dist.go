package chanalloc

import (
	"net"
	"time"

	"github.com/multiradio/chanalloc/internal/dist"
)

// Distributed-protocol types, re-exported. See the internal/dist package
// documentation for the wire protocol.
type (
	// Coordinator sequences the distributed token ring.
	Coordinator = dist.Coordinator
	// CoordinatorOption configures a Coordinator.
	CoordinatorOption = dist.CoordinatorOption
	// DistStats summarises a protocol run.
	DistStats = dist.Stats
	// Policy chooses a device's row when it holds the token.
	Policy = dist.Policy
	// GreedyPolicy reproduces Algorithm 1's placement over messages.
	GreedyPolicy = dist.GreedyPolicy
	// BestResponsePolicy plays exact best responses to announced loads.
	BestResponsePolicy = dist.BestResponsePolicy
	// AgentResult is a device's view of the final broadcast.
	AgentResult = dist.AgentResult
	// DistResult bundles coordinator and agent views of an in-process run.
	DistResult = dist.LocalResult
	// DistRunSpec describes one token-ring run of an engine-fanned batch.
	DistRunSpec = dist.RunSpec
	// DistBatchResult aggregates an engine-batched set of protocol runs.
	DistBatchResult = dist.BatchResult
	// DistRingSpec is a fully serialisable token-ring run description that
	// can cross the engine's Backend wire protocol to remote workers.
	DistRingSpec = dist.RingSpec
	// DistRateSpec is a serialisable channel rate function.
	DistRateSpec = dist.RateSpec
	// DistRingResult is the serialisable outcome of one ring run.
	DistRingResult = dist.RingResult
)

// DistRingTask is the registered engine task name behind
// RunDistributedRingBatch; a socket worker advertising it can serve ring
// grids for any coordinator.
const DistRingTask = dist.RingTask

// NewCoordinator builds a protocol coordinator for g.
func NewCoordinator(g *Game, opts ...CoordinatorOption) (*Coordinator, error) {
	return dist.NewCoordinator(g, opts...)
}

// WithDistMaxRounds caps token-ring sweeps.
func WithDistMaxRounds(n int) CoordinatorOption { return dist.WithMaxRounds(n) }

// WithDistTimeout bounds each protocol message wait.
func WithDistTimeout(d time.Duration) CoordinatorOption { return dist.WithTimeout(d) }

// RunAgent drives one device end of the protocol over conn until the
// coordinator broadcasts completion.
func RunAgent(conn net.Conn, policy Policy, timeout time.Duration) (AgentResult, error) {
	return dist.RunAgent(conn, policy, timeout)
}

// RunDistributed wires one agent per user to a coordinator over in-process
// pipes and runs the protocol to completion.
func RunDistributed(g *Game, policies []Policy, opts ...CoordinatorOption) (*DistResult, error) {
	return dist.RunLocal(g, policies, opts...)
}

// UniformPolicies builds one policy per user from a factory.
func UniformPolicies(n int, factory func(user int) Policy) []Policy {
	return dist.UniformPolicies(n, factory)
}

// RunDistributedBatch fans many token-ring runs — typically a (game ×
// policy-mix) grid — over the engine's worker pool. Run r reproduces an
// independent RunDistributed call with policies built from the stream
// EngineJobSeed(root, r), exactly and for any worker count.
func RunDistributedBatch(specs []DistRunSpec, opts ...EngineOption) (*DistBatchResult, error) {
	return dist.RunBatch(specs, opts...)
}

// RunDistributedRingBatch fans a grid of serialisable ring specs over any
// engine backend — the in-process pool, worker subprocesses, or socket
// peers on other machines — with byte-identical results on each. Run r
// builds its policies from the stream EngineJobSeed(root, r).
func RunDistributedRingBatch(b EngineBackend, specs []DistRingSpec, opts ...EngineOption) ([]DistRingResult, EngineStats, error) {
	return dist.RunRingBatch(b, specs, opts...)
}
