// Quickstart: build a game, run the paper's Algorithm 1, and verify the
// result both with Theorem 1 and with the exact best-response oracle.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/multiradio/chanalloc"
)

func main() {
	log.SetFlags(0)

	// Seven users, each with four radios, share six orthogonal channels —
	// the setting of the paper's Figure 4. Reservation TDMA sustains
	// 54 Mbit/s per channel no matter how many radios share it.
	g, err := chanalloc.NewGame(7, 6, 4, chanalloc.TDMA(54))
	if err != nil {
		log.Fatal(err)
	}

	// Algorithm 1: users place radios sequentially, each radio on a least
	// loaded channel. The paper proves the result is a Pareto-optimal NE.
	ne, err := chanalloc.Algorithm1(g)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Channel occupancy (paper Figure 1 style):")
	fmt.Print(chanalloc.OccupancyDiagram(ne))
	fmt.Println("\nStrategy matrix (paper Figure 2 style):")
	fmt.Println(ne.String())

	// Verify with the paper's closed-form characterisation...
	ok, violation := chanalloc.TheoremNE(g, ne)
	fmt.Printf("\nTheorem 1 says NE: %v", ok)
	if violation != nil {
		fmt.Printf(" (%s)", violation)
	}
	fmt.Println()

	// ...and with the exact best-response oracle (dynamic programming over
	// every possible reallocation of each user's radios).
	stable, err := g.IsNashEquilibrium(ne)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Exact oracle says NE:  %v\n", stable)

	// Theorem 2: the equilibrium is also system-optimal under constant R.
	poa, err := chanalloc.PriceOfAnarchy(g, ne)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPer-user rates (Mbit/s):\n")
	for i, u := range g.Utilities(ne) {
		fmt.Printf("  u%d: %6.2f\n", i+1, u)
	}
	fmt.Printf("Total rate %.2f Mbit/s; welfare ratio vs optimum: %.3f\n",
		g.Welfare(ne), poa)
}
