// Distributed allocation over TCP: one coordinator and |N| device agents
// running in separate goroutines, connected through real sockets on
// localhost. Devices only ever learn aggregate channel loads — the
// information carrier sensing would give them — and still settle on a
// verified Nash equilibrium.
//
// This is the "distributed implementation" the paper lists as ongoing
// work (§3).
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"github.com/multiradio/chanalloc"
)

const (
	users    = 6
	channels = 5
	radios   = 3
)

func main() {
	log.SetFlags(0)

	rate := chanalloc.TDMA(54)
	g, err := chanalloc.NewGame(users, channels, radios, rate)
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	fmt.Printf("Coordinator listening on %s; launching %d device agents...\n\n",
		ln.Addr(), users)

	// Device agents: half play greedy water-filling (the paper's Algorithm
	// 1 behaviour), half play exact best responses.
	var wg sync.WaitGroup
	agentViews := make([]chanalloc.AgentResult, users)
	for i := 0; i < users; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				log.Printf("agent %d dial: %v", i, err)
				return
			}
			defer conn.Close()
			var policy chanalloc.Policy
			if i%2 == 0 {
				policy = &chanalloc.GreedyPolicy{}
			} else {
				policy = &chanalloc.BestResponsePolicy{Rate: rate}
			}
			view, err := chanalloc.RunAgent(conn, policy, 10*time.Second)
			if err != nil {
				log.Printf("agent %d: %v", i, err)
				return
			}
			agentViews[i] = view
		}(i)
	}

	// Coordinator: accept one connection per device and run the token ring.
	conns := make([]net.Conn, users)
	for i := range conns {
		conn, err := ln.Accept()
		if err != nil {
			log.Fatal(err)
		}
		defer conn.Close()
		conns[i] = conn
	}
	co, err := chanalloc.NewCoordinator(g, chanalloc.WithDistTimeout(10*time.Second))
	if err != nil {
		log.Fatal(err)
	}
	alloc, dstats, err := co.Run(conns)
	wg.Wait()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Protocol finished: %d rounds, %d moves, %d messages, converged=%v\n\n",
		dstats.Rounds, dstats.Moves, dstats.Messages, dstats.Converged)
	fmt.Println("Agreed allocation:")
	fmt.Print(chanalloc.OccupancyDiagram(alloc))

	stable, err := g.IsNashEquilibrium(alloc)
	if err != nil {
		log.Fatal(err)
	}
	ok, _ := chanalloc.TheoremNE(g, alloc)
	fmt.Printf("\nTheorem 1: NE=%v; exact oracle: NE=%v\n", ok, stable)

	// Every agent was told the same final matrix.
	agreed := 0
	for _, view := range agentViews {
		if view.IsNE {
			agreed++
		}
	}
	fmt.Printf("%d/%d agents acknowledged the equilibrium broadcast.\n", agreed, users)
}
