// Mesh-backhaul scenario: multi-radio mesh routers in one collision domain
// compare three ways of assigning their radios to channels:
//
//  1. a naive static assignment (everyone on the first k channels),
//  2. selfish best-response dynamics from a random start, and
//  3. the paper's Algorithm 1.
//
// The example measures total backhaul capacity, per-router fairness (Jain
// index) and whether each outcome is stable against selfish deviation —
// reproducing the paper's message that selfish play is not the enemy here:
// it load-balances the spectrum on its own.
//
//	go run ./examples/mesh
package main

import (
	"fmt"
	"log"

	"github.com/multiradio/chanalloc"
	"github.com/multiradio/chanalloc/internal/stats"
)

const channelMbs = 54.0

func main() {
	log.SetFlags(0)

	// The mesh workload lives in the scenario registry; it pins the naive
	// static assignment (every router on the first k channels) as its start.
	s, err := chanalloc.ScenarioByName("mesh", chanalloc.TDMA(channelMbs))
	if err != nil {
		log.Fatal(err)
	}
	g, naive := s.Game, s.Alloc

	fmt.Printf("Mesh backhaul: %d routers, %d radios each, %d channels of %.0f Mbit/s.\n\n",
		g.Users(), g.Radios(), g.Channels(), channelMbs)
	fmt.Printf("%-28s  %12s  %10s  %8s\n", "assignment", "total Mbit/s", "Jain index", "stable?")

	// 1. Naive static: every router uses channels 1..k.
	report(g, "naive static (first k)", naive)

	// 2. Selfish dynamics from a random cold start.
	start := chanalloc.RandomAlloc(g, 2024)
	res, err := chanalloc.RunBestResponse(g, start)
	if err != nil {
		log.Fatal(err)
	}
	report(g, fmt.Sprintf("selfish dynamics (%d rounds)", res.Rounds), res.Final)

	// 3. Algorithm 1.
	alg1, err := chanalloc.Algorithm1(g)
	if err != nil {
		log.Fatal(err)
	}
	report(g, "Algorithm 1", alg1)

	fmt.Println()
	fmt.Println("Selfish dynamics and Algorithm 1 both land on load-balanced equilibria")
	fmt.Println("with full spectrum reuse; the naive assignment wastes half the band and")
	fmt.Println("is not stable (any router gains by moving a radio to an idle channel).")
}

func report(g *chanalloc.Game, name string, a *chanalloc.Alloc) {
	stable, err := g.IsNashEquilibrium(a)
	if err != nil {
		log.Fatal(err)
	}
	jain, err := stats.JainIndex(g.Utilities(a))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s  %12.1f  %10.4f  %8v\n", name, g.Welfare(a), jain, stable)
}
