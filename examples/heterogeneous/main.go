// Heterogeneous deployment: devices with different radio counts (a
// carrier-grade backhaul node with 4 radios, mid-tier APs with 2-3, an IoT
// gateway with 1) share the 5 GHz U-NII band. The paper assumes a uniform
// radio count; this example exercises the library's heterogeneous-budget
// extension (EXPERIMENTS.md E11) and prints real channel frequencies.
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"

	"github.com/multiradio/chanalloc"
)

func main() {
	log.SetFlags(0)

	band := chanalloc.UNII5GHz()
	devices := []chanalloc.Device{
		{ID: "backhaul-1", Radios: 4},
		{ID: "ap-east", Radios: 3},
		{ID: "ap-west", Radios: 3},
		{ID: "ap-yard", Radios: 2},
		{ID: "iot-gw", Radios: 1},
	}
	deployment, err := chanalloc.NewDeployment(band, devices)
	if err != nil {
		log.Fatal(err)
	}

	// Practical CSMA/CA channel model: the total rate of a channel decays
	// as radios pile on.
	rate, err := chanalloc.PracticalCSMA(chanalloc.Bianchi1Mbps())
	if err != nil {
		log.Fatal(err)
	}
	g, err := deployment.HeteroGame(rate)
	if err != nil {
		log.Fatal(err)
	}

	alloc, err := chanalloc.HeteroAlgorithm1(g, chanalloc.TieFirst, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Band: %s (%d channels)\n\n", band.Name, band.NumChannels)
	fmt.Println("Occupancy after selfish allocation:")
	fmt.Print(chanalloc.OccupancyDiagram(alloc))

	assignments, err := deployment.Assignments(alloc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nRadio assignments:")
	for _, a := range assignments {
		fmt.Printf("  %s\n", a)
	}

	ne, err := g.IsNashEquilibrium(alloc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nStable against selfish deviation: %v\n", ne)
	fmt.Printf("Loads balanced within one radio:   %v\n", chanalloc.LoadBalanced(alloc))
	fmt.Println("\nPer-device rates (Mbit/s):")
	for i, u := range g.Utilities(alloc) {
		fmt.Printf("  %-12s (%d radios): %6.3f\n", devices[i].ID, devices[i].Radios, u)
	}
	fmt.Printf("Total: %.3f Mbit/s\n", g.Welfare(alloc))
}
