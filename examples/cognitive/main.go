// Cognitive-radio scenario: secondary users with multiple radios enter a
// band one at a time and allocate selfishly. The example shows the paper's
// central claim in motion — even as the population grows, selfish
// allocation keeps the spectrum load-balanced and (for constant-rate MACs)
// system optimal.
//
// The channel model is the practical 802.11 DCF rate from Bianchi's model,
// so the total rate of a channel genuinely degrades as radios pile on.
//
//	go run ./examples/cognitive
package main

import (
	"fmt"
	"log"

	"github.com/multiradio/chanalloc"
)

const (
	channels      = 8
	radiosPerUser = 3
	maxUsers      = 10
)

func main() {
	log.SetFlags(0)

	// Channel substrate: Bianchi's DCF model at 1 Mbit/s (practical
	// backoff), so R(k) decreases from 0.84 toward 0.72 as k grows.
	rate, err := chanalloc.PracticalCSMA(chanalloc.Bianchi1Mbps())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Secondary users entering a band of 8 channels, 3 radios each.")
	fmt.Println("After each arrival, all devices re-run selfish allocation.")
	fmt.Println()
	fmt.Printf("%6s  %12s  %12s  %10s  %8s\n",
		"users", "max-min load", "total Mbit/s", "per-user", "NE?")

	for n := 1; n <= maxUsers; n++ {
		// The cognitive workload is a registry family parameterised by the
		// current population size.
		s, err := chanalloc.ScenarioByName(
			fmt.Sprintf("cognitive:%d,%d,%d", n, channels, radiosPerUser), rate)
		if err != nil {
			log.Fatal(err)
		}
		g := s.Game
		// Re-allocation after an arrival: run the sequential protocol with
		// the newcomers included. (A real deployment would run the
		// distributed token protocol; see examples/distributed.)
		alloc, err := chanalloc.Algorithm1(g)
		if err != nil {
			log.Fatal(err)
		}
		maxLoad, _ := alloc.MaxLoad()
		minLoad, _ := alloc.MinLoad()
		stable, err := g.IsNashEquilibrium(alloc)
		if err != nil {
			log.Fatal(err)
		}
		perUser := g.Welfare(alloc) / float64(n)
		fmt.Printf("%6d  %7d-%-4d  %12.3f  %10.3f  %8v\n",
			n, maxLoad, minLoad, g.Welfare(alloc), perUser, stable)
	}

	fmt.Println()
	fmt.Println("Observations:")
	fmt.Println("  - loads never differ by more than one radio (Proposition 1);")
	fmt.Println("  - every state is a Nash equilibrium (Theorem 1);")
	fmt.Println("  - total rate declines gently because practical CSMA/CA decays with k,")
	fmt.Println("    while per-user rate falls as newcomers share the band.")

	// Show the final occupancy (same parameters as the last arrival row).
	s, err := chanalloc.ScenarioByName(
		fmt.Sprintf("cognitive:%d,%d,%d", maxUsers, channels, radiosPerUser), rate)
	if err != nil {
		log.Fatal(err)
	}
	alloc, err := chanalloc.Algorithm1(s.Game)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("Final occupancy with 10 users:")
	fmt.Print(chanalloc.OccupancyDiagram(alloc))
}
