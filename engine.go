package chanalloc

import (
	"crypto/tls"
	"net"
	"time"

	"github.com/multiradio/chanalloc/internal/core"
	"github.com/multiradio/chanalloc/internal/des"
	"github.com/multiradio/chanalloc/internal/engine"
)

// Parallel experiment engine, re-exported. The engine is a deterministic
// worker pool: jobs fan out over runtime.NumCPU() workers (or an explicit
// pool size), every job draws randomness from a private PRNG stream derived
// from the root seed and the job index alone, and results fan in ordered by
// job — so a batch is byte-identical no matter how many workers ran it.
type (
	// EngineStats reports how a batch executed (pool size, wall time,
	// per-job timings).
	EngineStats = engine.Stats
	// EngineOption configures ParallelMap / ParallelForEach.
	EngineOption = engine.Option
	// RNG is the explicit-seed SplitMix64 generator handed to engine jobs.
	RNG = des.RNG
)

// EngineWorkers fixes the worker-pool size; n < 1 (and the default) means
// runtime.NumCPU().
func EngineWorkers(n int) EngineOption { return engine.Workers(n) }

// EngineSeed sets the root seed that every per-job PRNG stream derives
// from.
func EngineSeed(seed uint64) EngineOption { return engine.Seed(seed) }

// EngineJobSeed derives the PRNG stream seed of one job from a root seed;
// it depends only on (root, job), never on scheduling.
func EngineJobSeed(root uint64, job int) uint64 { return engine.JobSeed(root, job) }

// ParallelMap runs jobs 0..n-1 over the engine's worker pool and returns
// their results in job order.
func ParallelMap[T any](n int, fn func(job int, rng *RNG) (T, error), opts ...EngineOption) ([]T, EngineStats, error) {
	return engine.Map(n, fn, opts...)
}

// ParallelForEach is ParallelMap for jobs that produce no value.
func ParallelForEach(n int, fn func(job int, rng *RNG) error, opts ...EngineOption) (EngineStats, error) {
	return engine.ForEach(n, fn, opts...)
}

// EnumerateNEParallel is EnumerateNE sharded over the worker pool by the
// first user's strategy row — or, when the game has few strategies per user
// relative to the pool, by the first two users' rows, keeping every worker
// busy. Either way the result is identical to the serial enumeration,
// equilibrium for equilibrium, for every worker count (workers < 1 means
// runtime.NumCPU()).
func EnumerateNEParallel(g *Game, maxProfiles int64, workers int) ([]*Alloc, error) {
	return core.EnumerateNEParallel(g, maxProfiles, workers)
}

// Pluggable engine backends, re-exported. A Backend executes batches of a
// named, registered task (closures cannot cross process boundaries) under
// the engine's determinism contract: per-job PRNG streams seeded by
// (root seed, job index) alone and index-ordered fan-in, so every backend
// produces byte-identical results — the in-process pool and the
// multi-process coordinator alike. See the internal/engine package
// documentation.
type (
	// EngineBackend executes task batches under the determinism contract.
	EngineBackend = engine.Backend
	// EngineTaskFunc runs one job of a registered task.
	EngineTaskFunc = engine.TaskFunc
	// InProcessBackend is the default backend: the in-process worker pool.
	InProcessBackend = engine.InProcess
	// ProcessBackend shards batches over re-exec'd worker subprocesses
	// speaking newline-delimited JSON over stdio.
	ProcessBackend = engine.Process
	// SocketBackend dispatches batches over TCP or unix-socket connections
	// to remote workers speaking the same wire protocol, with a version
	// handshake per connection and requeue of a dead peer's in-flight job.
	SocketBackend = engine.Socket
	// ClusterBackend is the membership backend: workers dial IN and
	// register (joins are accepted mid-batch), heartbeats track liveness,
	// silent workers are evicted with their in-flight jobs requeued, and
	// dispatch streams a pipelined window of jobs per peer instead of
	// lock-step send/receive.
	ClusterBackend = engine.Cluster
	// ClusterOption configures NewClusterBackend.
	ClusterOption = engine.ClusterOption
	// SocketOption configures NewSocketBackendWith.
	SocketOption = engine.SocketOption
	// JoinOption configures EngineJoinAndServe.
	JoinOption = engine.JoinOption
	// ServeOption configures EngineServe / EngineListenAndServe.
	ServeOption = engine.ServeOption
)

// EngineProtocolVersion is the version of the coordinator<->worker wire
// protocol, exchanged in the hello handshake that opens every socket
// connection so skewed binaries fail loudly at connect time.
const EngineProtocolVersion = engine.ProtocolVersion

// NewInProcessBackend returns the default in-process backend.
func NewInProcessBackend() *InProcessBackend { return engine.NewInProcess() }

// NewProcessBackend returns a multi-process backend sharding batches over
// `shards` worker subprocesses (shards < 1 means one per CPU). Workers are
// the current binary re-exec'd in engine-worker mode; call
// RunEngineWorkerIfRequested first thing in main to enable that mode.
func NewProcessBackend(shards int) *ProcessBackend { return engine.NewProcess(shards) }

// NewSocketBackend returns a cross-machine backend dispatching batches over
// one persistent connection per worker address. Addresses are "host:port"
// (TCP), "unix:/path" or a bare filesystem path (unix socket); workers are
// processes serving EngineListenAndServe — cmd/engineworker for library
// tasks, or any task-registering binary with a listen mode (cmd/sweep
// -listen). A dead peer's in-flight job is requeued for the survivors.
func NewSocketBackend(addrs ...string) *SocketBackend { return engine.NewSocket(addrs...) }

// NewSocketBackendWith is NewSocketBackend plus options.
func NewSocketBackendWith(addrs []string, opts ...SocketOption) *SocketBackend {
	return engine.NewSocketWith(addrs, opts...)
}

// SocketAuthToken sets the shared secret a socket coordinator announces in
// its hello handshakes; the workers' -auth-token must match.
func SocketAuthToken(token string) SocketOption { return engine.WithAuthToken(token) }

// SocketTLS layers TLS client sessions under the socket backend's job
// protocol; workers must listen with the matching ServeTLS / -tls-cert.
func SocketTLS(cfg *tls.Config) SocketOption { return engine.WithSocketTLS(cfg) }

// TLS plumbing, re-exported: every socket path of the engine — socket
// workers, cluster coordinators, joining workers — can run its NDJSON
// protocol over TLS with frame bytes unchanged. Listeners load a cert/key
// pair (EngineServerTLSConfig ← -tls-cert/-tls-key), dialers verify against
// a CA bundle (EngineClientTLSConfig ← -tls-ca, or -tls-skip-verify in
// tests).

// EngineServerTLSConfig loads a listener's TLS certificate/key pair.
func EngineServerTLSConfig(certFile, keyFile string) (*tls.Config, error) {
	return engine.ServerTLSConfig(certFile, keyFile)
}

// EngineClientTLSConfig builds a dialer's TLS configuration: caFile (when
// set) replaces the system roots; skipVerify disables verification (tests).
func EngineClientTLSConfig(caFile string, skipVerify bool) (*tls.Config, error) {
	return engine.ClientTLSConfig(caFile, skipVerify)
}

// GenerateSelfSignedCert mints an ECDSA P-256 self-signed certificate for
// the given hosts, as PEM cert and key blocks (cmd/gencert, tests, CI
// smokes — bring real certificates for production).
func GenerateSelfSignedCert(hosts []string, notBefore, notAfter time.Time) (certPEM, keyPEM []byte, err error) {
	return engine.GenerateSelfSignedCert(hosts, notBefore, notAfter)
}

// NewClusterBackend listens for worker joins on addr ("host:port", ":port",
// "unix:/path" or a bare path) and returns the membership backend. Workers
// join with EngineJoinAndServe or `engineworker -join addr`; joins are
// accepted any time, including mid-batch. Close the backend when the whole
// sweep is done — the membership outlives individual batches.
func NewClusterBackend(addr string, opts ...ClusterOption) (*ClusterBackend, error) {
	return engine.NewCluster(addr, opts...)
}

// ClusterWindow sets the per-peer window of outstanding jobs (default 8);
// window 1 degenerates to lock-step dispatch. The window never affects
// results, only wall clock.
func ClusterWindow(n int) ClusterOption { return engine.WithClusterWindow(n) }

// ClusterAuthToken sets the shared secret every joining worker must
// present; a mismatch rejects the join loudly, like version skew.
func ClusterAuthToken(token string) ClusterOption { return engine.WithClusterAuthToken(token) }

// ClusterJoinWait bounds the batch's accumulated time with no capable
// worker connected (default 30s); only a completed job resets the budget,
// so a crash-looping worker cannot keep a batch waiting forever.
func ClusterJoinWait(d time.Duration) ClusterOption { return engine.WithJoinWait(d) }

// ClusterTLS makes the coordinator require a TLS handshake from every
// joining worker; workers must dial with the matching JoinTLS / -tls-ca.
func ClusterTLS(cfg *tls.Config) ClusterOption { return engine.WithClusterTLS(cfg) }

// ClusterJournal checkpoints batch progress to an append-only NDJSON file:
// the batch's identity plus one entry per completed job with its exact
// result bytes (see internal/journal). Journal write failures are logged,
// never fatal.
func ClusterJournal(path string) ClusterOption { return engine.WithClusterJournal(path) }

// ClusterResume recovers an existing journal before dispatch: checkpointed
// jobs are filled in from the file (EngineStats.Resumed) and only the
// remainder runs. The journal's identity — task, params hash, seed, job
// count — must match the batch exactly or the run fails loudly.
func ClusterResume(on bool) ClusterOption { return engine.WithClusterResume(on) }

// ClusterJournalFsync sets the journal fsync cadence: sync after every n
// entries (default 1).
func ClusterJournalFsync(n int) ClusterOption { return engine.WithClusterJournalFsync(n) }

// EngineJoinAndServe turns the process into a cluster worker: dial the
// coordinator at addr, register this process's task registry, serve
// pipelined jobs with heartbeats, and rejoin whenever the coordinator goes
// away. Permanent rejections (auth token, protocol version) return
// immediately; transient failures retry with backoff.
func EngineJoinAndServe(addr string, opts ...JoinOption) error {
	return engine.JoinAndServe(addr, opts...)
}

// JoinAuthToken sets the shared secret presented at registration.
func JoinAuthToken(token string) JoinOption { return engine.WithJoinAuthToken(token) }

// JoinAttempts bounds consecutive failed join attempts (default 0:
// retry forever — a worker outlives its coordinators).
func JoinAttempts(n int) JoinOption { return engine.WithJoinAttempts(n) }

// JoinStop makes EngineJoinAndServe return when the channel closes.
func JoinStop(stop <-chan struct{}) JoinOption { return engine.WithJoinStop(stop) }

// JoinTLS layers a TLS client session under the join protocol; the
// coordinator must listen with the matching ClusterTLS / -tls-cert.
func JoinTLS(cfg *tls.Config) JoinOption { return engine.WithJoinTLS(cfg) }

// JoinBackoffSeed seeds the join loop's backoff jitter (default: a
// process-unique seed so restarted fleets spread their redials).
func JoinBackoffSeed(seed uint64) JoinOption { return engine.WithJoinBackoffSeed(seed) }

// ServeAuthToken sets the shared secret a listening socket worker requires
// from every dialing coordinator.
func ServeAuthToken(token string) ServeOption { return engine.WithServeAuthToken(token) }

// ServeTLS makes a listening socket worker answer every connection with a
// TLS server handshake before the job protocol; coordinators must dial
// with the matching SocketTLS / -tls-ca.
func ServeTLS(cfg *tls.Config) ServeOption { return engine.WithServeTLS(cfg) }

// ServeStop makes EngineServe / EngineListenAndServe shut down gracefully
// when the channel closes: stop accepting, drain in-flight connections,
// return nil.
func ServeStop(stop <-chan struct{}) ServeOption { return engine.WithServeStop(stop) }

// ServeDrainTimeout bounds the graceful drain after ServeStop fires;
// connections still serving past it are force-closed (default: unbounded).
func ServeDrainTimeout(d time.Duration) ServeOption { return engine.WithServeDrainTimeout(d) }

// EngineListenAndServe turns the process into a long-lived socket worker:
// announce on addr ("host:port", ":port", "unix:/path" or a bare path),
// answer the protocol handshake on each connection, and serve jobs of the
// tasks registered in this process until it dies.
func EngineListenAndServe(addr string, opts ...ServeOption) error {
	return engine.ListenAndServe(addr, opts...)
}

// EngineServe is EngineListenAndServe over an existing listener; it returns
// nil when lis is closed.
func EngineServe(lis net.Listener, opts ...ServeOption) error { return engine.Serve(lis, opts...) }

// EngineTaskNames lists the tasks registered in this process, sorted.
func EngineTaskNames() []string { return engine.TaskNames() }

// RegisterEngineTask adds a named task to the process-global registry so
// backends (including worker subprocesses) can run it.
func RegisterEngineTask(name string, fn EngineTaskFunc) error {
	return engine.RegisterTask(name, fn)
}

// RunEngineTask runs a registered task over any backend with typed
// parameters and per-job results.
func RunEngineTask[T any](b EngineBackend, task string, params any, n int, opts ...EngineOption) ([]T, EngineStats, error) {
	return engine.RunTask[T](b, task, params, n, opts...)
}

// RunEngineWorkerIfRequested turns the process into an engine worker when
// the ProcessBackend's environment marker is set, serving task jobs over
// stdio until the coordinator closes the pipe; it returns immediately in a
// normal run. Call it at the top of main, after task registrations.
func RunEngineWorkerIfRequested() { engine.RunWorkerIfRequested() }
