package chanalloc

import (
	"github.com/multiradio/chanalloc/internal/core"
	"github.com/multiradio/chanalloc/internal/des"
	"github.com/multiradio/chanalloc/internal/engine"
)

// Parallel experiment engine, re-exported. The engine is a deterministic
// worker pool: jobs fan out over runtime.NumCPU() workers (or an explicit
// pool size), every job draws randomness from a private PRNG stream derived
// from the root seed and the job index alone, and results fan in ordered by
// job — so a batch is byte-identical no matter how many workers ran it.
type (
	// EngineStats reports how a batch executed (pool size, wall time,
	// per-job timings).
	EngineStats = engine.Stats
	// EngineOption configures ParallelMap / ParallelForEach.
	EngineOption = engine.Option
	// RNG is the explicit-seed SplitMix64 generator handed to engine jobs.
	RNG = des.RNG
)

// EngineWorkers fixes the worker-pool size; n < 1 (and the default) means
// runtime.NumCPU().
func EngineWorkers(n int) EngineOption { return engine.Workers(n) }

// EngineSeed sets the root seed that every per-job PRNG stream derives
// from.
func EngineSeed(seed uint64) EngineOption { return engine.Seed(seed) }

// EngineJobSeed derives the PRNG stream seed of one job from a root seed;
// it depends only on (root, job), never on scheduling.
func EngineJobSeed(root uint64, job int) uint64 { return engine.JobSeed(root, job) }

// ParallelMap runs jobs 0..n-1 over the engine's worker pool and returns
// their results in job order.
func ParallelMap[T any](n int, fn func(job int, rng *RNG) (T, error), opts ...EngineOption) ([]T, EngineStats, error) {
	return engine.Map(n, fn, opts...)
}

// ParallelForEach is ParallelMap for jobs that produce no value.
func ParallelForEach(n int, fn func(job int, rng *RNG) error, opts ...EngineOption) (EngineStats, error) {
	return engine.ForEach(n, fn, opts...)
}

// EnumerateNEParallel is EnumerateNE sharded over the worker pool by the
// first user's strategy row; the result is identical to the serial
// enumeration, equilibrium for equilibrium, for every worker count
// (workers < 1 means runtime.NumCPU()).
func EnumerateNEParallel(g *Game, maxProfiles int64, workers int) ([]*Alloc, error) {
	return core.EnumerateNEParallel(g, maxProfiles, workers)
}
