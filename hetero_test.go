package chanalloc_test

import (
	"strings"
	"testing"

	"github.com/multiradio/chanalloc"
)

func TestPublicHeteroGame(t *testing.T) {
	g, err := chanalloc.NewHeteroGame(6, []int{4, 2, 3, 1}, chanalloc.TDMA(1))
	if err != nil {
		t.Fatal(err)
	}
	a, err := chanalloc.HeteroAlgorithm1(g, chanalloc.TieFirst, 0)
	if err != nil {
		t.Fatal(err)
	}
	ne, err := g.IsNashEquilibrium(a)
	if err != nil {
		t.Fatal(err)
	}
	if !ne {
		t.Fatal("hetero allocation not NE")
	}
	if !chanalloc.LoadBalanced(a) {
		t.Fatal("hetero allocation not load balanced")
	}
}

func TestPublicDeployment(t *testing.T) {
	d, err := chanalloc.NewDeployment(chanalloc.UNII5GHz(), []chanalloc.Device{
		{ID: "a", Radios: 3},
		{ID: "b", Radios: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := d.HeteroGame(chanalloc.TDMA(1))
	if err != nil {
		t.Fatal(err)
	}
	a, err := chanalloc.HeteroAlgorithm1(g, chanalloc.TieFirst, 0)
	if err != nil {
		t.Fatal(err)
	}
	assignments, err := d.Assignments(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(assignments) != 5 {
		t.Fatalf("%d assignments, want 5", len(assignments))
	}
	if !strings.Contains(assignments[0].String(), "MHz") {
		t.Fatal("assignment string missing frequency")
	}
}

func TestPublicBands(t *testing.T) {
	if chanalloc.ISM2400().NumChannels != 3 {
		t.Error("ISM band should expose 3 orthogonal channels")
	}
	if chanalloc.UNII5GHz().NumChannels != 8 {
		t.Error("U-NII band should expose 8 channels")
	}
}

func TestPublicSimultaneousDynamics(t *testing.T) {
	g, err := chanalloc.NewGame(5, 4, 2, chanalloc.TDMA(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := chanalloc.RunSimultaneous(g, chanalloc.RandomAlloc(g, 1), 0.5,
		chanalloc.WithDynamicsSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("simultaneous dynamics did not converge")
	}
}

func TestPublicLinearRate(t *testing.T) {
	r := chanalloc.LinearRate(10, 2)
	if err := chanalloc.ValidateRate(r, 32); err != nil {
		t.Fatal(err)
	}
	if r.Rate(6) != 0 {
		t.Fatalf("Rate(6) = %v, want 0 (clamped)", r.Rate(6))
	}
	// A game on a rate that hits zero still works end to end.
	g, err := chanalloc.NewGame(4, 3, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	a, err := chanalloc.Algorithm1(g)
	if err != nil {
		t.Fatal(err)
	}
	ne, err := g.IsNashEquilibrium(a)
	if err != nil {
		t.Fatal(err)
	}
	if !ne {
		dev, _ := g.FindDeviation(a, chanalloc.DefaultEps)
		t.Fatalf("Algorithm 1 output not NE under clamped linear rate: %v", dev)
	}
}

func TestPublicRTSCTS(t *testing.T) {
	p := chanalloc.Bianchi1Mbps().WithRTSCTS()
	basic, err := chanalloc.SolveDCF(chanalloc.Bianchi1Mbps(), 40)
	if err != nil {
		t.Fatal(err)
	}
	rts, err := chanalloc.SolveDCF(p, 40)
	if err != nil {
		t.Fatal(err)
	}
	if rts.Throughput <= basic.Throughput {
		t.Fatal("RTS/CTS should beat basic access at n=40")
	}
	r, err := chanalloc.PracticalCSMA(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := chanalloc.ValidateRate(r, 20); err != nil {
		t.Fatal(err)
	}
}

func TestPublicPlacer(t *testing.T) {
	p := chanalloc.Placer{}
	row, err := p.Place([]int{2, 0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if row[1] != 1 || row[2] != 1 {
		t.Fatalf("row = %v, want water-fill [0 1 1]", row)
	}
}
