package chanalloc_test

import (
	"fmt"
	"math"
	"sync/atomic"
	"testing"

	"github.com/multiradio/chanalloc"
)

// TestPublicQuickstart walks the README's quickstart through the public API.
func TestPublicQuickstart(t *testing.T) {
	g, err := chanalloc.NewGame(7, 6, 4, chanalloc.TDMA(54))
	if err != nil {
		t.Fatal(err)
	}
	ne, err := chanalloc.Algorithm1(g)
	if err != nil {
		t.Fatal(err)
	}
	ok, v := chanalloc.TheoremNE(g, ne)
	if !ok {
		t.Fatalf("Algorithm 1 output fails Theorem 1: %v", v)
	}
	stable, err := g.IsNashEquilibrium(ne)
	if err != nil {
		t.Fatal(err)
	}
	if !stable {
		t.Fatal("Algorithm 1 output rejected by oracle")
	}
	poa, err := chanalloc.PriceOfAnarchy(g, ne)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(poa-1) > 1e-12 {
		t.Fatalf("PoA = %v, want 1 under constant R", poa)
	}
}

func TestPublicRateFamilies(t *testing.T) {
	rates := []chanalloc.RateFunc{
		chanalloc.TDMA(10),
		chanalloc.HarmonicRate(10, 0.5),
		chanalloc.GeometricRate(10, 0.9),
	}
	for _, r := range rates {
		if err := chanalloc.ValidateRate(r, 32); err != nil {
			t.Errorf("%s: %v", r.Name(), err)
		}
	}
	tbl, err := chanalloc.TableRate("measured", []float64{9, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rate(2) != 8 {
		t.Fatalf("table rate wrong: %v", tbl.Rate(2))
	}
}

func TestPublicCSMAAdapters(t *testing.T) {
	p := chanalloc.Default80211b()
	prac, err := chanalloc.PracticalCSMA(p)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := chanalloc.OptimalCSMA(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := chanalloc.ValidateRate(prac, 20); err != nil {
		t.Fatal(err)
	}
	if err := chanalloc.ValidateRate(opt, 20); err != nil {
		t.Fatal(err)
	}
	// A full game on the practical CSMA rate still lands on a NE.
	g, err := chanalloc.NewGame(5, 4, 3, prac)
	if err != nil {
		t.Fatal(err)
	}
	ne, err := chanalloc.Algorithm1(g)
	if err != nil {
		t.Fatal(err)
	}
	stable, err := g.IsNashEquilibrium(ne)
	if err != nil {
		t.Fatal(err)
	}
	if !stable {
		t.Fatal("Algorithm 1 output on CSMA rate is not NE")
	}
}

func TestPublicScenarios(t *testing.T) {
	// The paper's worked examples pin a strategy matrix.
	for _, name := range []string{"fig1", "fig4", "fig5"} {
		s, err := chanalloc.ScenarioByName(name, chanalloc.TDMA(1))
		if err != nil {
			t.Fatal(err)
		}
		if s.Alloc == nil {
			t.Fatalf("%s has no pinned allocation", name)
		}
	}
	// Every registered family carries usage text and resolves via the
	// registry (parametric families with example parameters).
	if len(chanalloc.ScenarioNames()) < 7 {
		t.Fatalf("registry too small: %v", chanalloc.ScenarioNames())
	}
	for _, name := range []string{"mesh", "cognitive", "random:8,6,3", "hetero:6,4,4,2,1"} {
		s, err := chanalloc.ScenarioByName(name, chanalloc.TDMA(1))
		if err != nil {
			t.Fatal(err)
		}
		if s.Game == nil && s.Hetero == nil {
			t.Fatalf("%s resolved without a game", name)
		}
	}
	// The registry is process-global: use a unique name per run so the
	// test stays idempotent under -count=N.
	name := fmt.Sprintf("facade-test-%d", facadeRegistrations.Add(1))
	if err := chanalloc.RegisterScenario(
		chanalloc.ScenarioFamily{Name: name, Usage: name, Description: "test"},
		func(params string, r chanalloc.RateFunc) (*chanalloc.Scenario, error) {
			return chanalloc.ScenarioFigure4(r)
		}); err != nil {
		t.Fatal(err)
	}
	if _, err := chanalloc.ScenarioByName(name, chanalloc.TDMA(1)); err != nil {
		t.Fatal(err)
	}
}

// facadeRegistrations keeps registry-mutating tests idempotent across
// repeated runs in one process.
var facadeRegistrations atomic.Int64

func TestPublicDynamics(t *testing.T) {
	g, err := chanalloc.NewGame(5, 4, 3, chanalloc.TDMA(1))
	if err != nil {
		t.Fatal(err)
	}
	start := chanalloc.RandomAlloc(g, 42)
	res, err := chanalloc.RunBestResponse(g, start,
		chanalloc.WithDynamicsSchedule(chanalloc.RandomOrder),
		chanalloc.WithDynamicsSeed(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("dynamics did not converge")
	}
	stable, err := g.IsNashEquilibrium(res.Final)
	if err != nil {
		t.Fatal(err)
	}
	if !stable {
		t.Fatal("converged state not NE")
	}
	if chanalloc.Potential(g.Rate(), res.Final) < chanalloc.Potential(g.Rate(), start)-1e-9 {
		t.Fatal("potential decreased end to end")
	}
}

func TestPublicDistributed(t *testing.T) {
	r := chanalloc.TDMA(1)
	g, err := chanalloc.NewGame(4, 4, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	policies := chanalloc.UniformPolicies(g.Users(), func(int) chanalloc.Policy {
		return &chanalloc.BestResponsePolicy{Rate: r}
	})
	res, err := chanalloc.RunDistributed(g, policies)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Converged {
		t.Fatal("distributed run did not converge")
	}
	stable, err := g.IsNashEquilibrium(res.Alloc)
	if err != nil {
		t.Fatal(err)
	}
	if !stable {
		t.Fatal("distributed result not NE")
	}
}

func TestPublicSimulators(t *testing.T) {
	res, err := chanalloc.SimulateCSMA(chanalloc.Default80211b(), 3, 20000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 {
		t.Fatal("CSMA sim produced nothing")
	}
	tdma, err := chanalloc.SimulateTDMA(chanalloc.TDMASimConfig{
		Radios: 4, SlotTime: 1000, Guard: 0, DataRate: 11, Frames: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tdma.Throughput-11) > 1e-9 {
		t.Fatalf("TDMA sim throughput %v, want 11", tdma.Throughput)
	}
}

func TestPublicWelfareHelpers(t *testing.T) {
	g, err := chanalloc.NewGame(2, 3, 2, chanalloc.TDMA(1))
	if err != nil {
		t.Fatal(err)
	}
	all, _ := chanalloc.OptimalWelfareAllPlaced(g)
	idle, _ := chanalloc.OptimalWelfareIdleAllowed(g)
	if all <= 0 || idle <= 0 {
		t.Fatal("degenerate optima")
	}
	nes, err := chanalloc.EnumerateNE(g, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(nes) == 0 {
		t.Fatal("no NE enumerated")
	}
	imp, err := chanalloc.FindParetoImprovement(g, nes[0], 1e-9, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if imp != nil {
		t.Fatal("NE should be Pareto-optimal")
	}
}

func TestPublicTDMASchedules(t *testing.T) {
	g, err := chanalloc.NewGame(4, 4, 2, chanalloc.TDMA(1))
	if err != nil {
		t.Fatal(err)
	}
	a, err := chanalloc.Algorithm1(g)
	if err != nil {
		t.Fatal(err)
	}
	schedules, err := chanalloc.BuildTDMASchedules(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := chanalloc.VerifyFairShare(a, schedules); err != nil {
		t.Fatal(err)
	}
}

func TestPublicDCFSolvers(t *testing.T) {
	p := chanalloc.Bianchi1Mbps()
	r, err := chanalloc.SolveDCF(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r.Efficiency < 0.6 || r.Efficiency > 0.9 {
		t.Fatalf("efficiency %v outside Bianchi's published band", r.Efficiency)
	}
	o, err := chanalloc.SolveDCFOptimal(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	if o.Throughput <= r.Throughput {
		t.Fatal("optimal backoff should beat practical at n=10")
	}
	emp, err := chanalloc.EmpiricalCSMARate(p, 3, 30000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := chanalloc.ValidateRate(emp, 3); err != nil {
		t.Fatal(err)
	}
}

// TestPublicWorkspaceKernel exercises the allocation-free facade: workspace
// entry points agree with the one-shot forms, returned rows alias the
// workspace (so wrappers must copy), and FreezeRate snapshots match the
// inner curve exactly.
func TestPublicWorkspaceKernel(t *testing.T) {
	g, err := chanalloc.NewGame(4, 4, 2, chanalloc.TDMA(1))
	if err != nil {
		t.Fatal(err)
	}
	a := chanalloc.RandomAlloc(g, 7)
	ws := chanalloc.NewWorkspace()
	for i := 0; i < g.Users(); i++ {
		wantRow, wantVal, err := g.BestResponse(a, i)
		if err != nil {
			t.Fatal(err)
		}
		gotRow, gotVal, err := g.BestResponseInto(ws, a, i)
		if err != nil {
			t.Fatal(err)
		}
		if gotVal != wantVal {
			t.Fatalf("user %d: workspace value %v, one-shot %v", i, gotVal, wantVal)
		}
		for c := range wantRow {
			if gotRow[c] != wantRow[c] {
				t.Fatalf("user %d: workspace row %v, one-shot %v", i, gotRow, wantRow)
			}
		}
	}
	oneShot, err := g.IsNashEquilibrium(a)
	if err != nil {
		t.Fatal(err)
	}
	screened, err := g.IsNashEquilibriumWith(ws, a)
	if err != nil {
		t.Fatal(err)
	}
	if oneShot != screened {
		t.Fatalf("screened oracle %v, one-shot %v", screened, oneShot)
	}

	ext := []int{2, 0, 1, 3}
	rowA, valA, err := chanalloc.BestResponseToLoads(chanalloc.TDMA(1), ext, 2)
	if err != nil {
		t.Fatal(err)
	}
	rowB, valB, err := chanalloc.BestResponseToLoadsInto(ws, chanalloc.TDMA(1), ext, 2)
	if err != nil {
		t.Fatal(err)
	}
	if valA != valB {
		t.Fatalf("loads DP: workspace value %v, one-shot %v", valB, valA)
	}
	for c := range rowA {
		if rowA[c] != rowB[c] {
			t.Fatalf("loads DP rows differ: %v vs %v", rowA, rowB)
		}
	}

	inner := chanalloc.HarmonicRate(5, 0.5)
	frozen, err := chanalloc.FreezeRate(inner, 16)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= 16; k++ {
		if frozen.Rate(k) != inner.Rate(k) {
			t.Fatalf("frozen Rate(%d) = %v, inner %v", k, frozen.Rate(k), inner.Rate(k))
		}
	}
}
