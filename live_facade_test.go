package chanalloc_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/multiradio/chanalloc"
)

// TestLiveFacade drives the live-game surface end to end through the
// facade: mutate, warm-start requilibrate with a borrowed workspace, and
// cross-check the result against the heterogeneous cold-start runner.
func TestLiveFacade(t *testing.T) {
	lg, err := chanalloc.NewLiveGame(4, chanalloc.TDMA(54))
	if err != nil {
		t.Fatal(err)
	}
	var ids []chanalloc.UserID
	for _, k := range []int{2, 1, 3, 1} {
		id, err := lg.Join(k)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	ws := chanalloc.BorrowWorkspace()
	defer chanalloc.ReturnWorkspace(ws)
	res, err := chanalloc.Requilibrate(lg, chanalloc.WithDynamicsWorkspace(ws))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if err := lg.Leave(ids[1]); err != nil {
		t.Fatal(err)
	}

	// Cold-start runner from the same post-churn state must agree.
	g := lg.Frozen()
	start := lg.Alloc().Clone()
	warm, err := chanalloc.Requilibrate(lg)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := chanalloc.RunHeteroBestResponse(g, start)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Moves != cold.Moves || !cold.Final.Equal(lg.Alloc()) {
		t.Fatalf("warm (%d moves) and cold (%d moves) disagree", warm.Moves, cold.Moves)
	}
	ne, err := g.IsNashEquilibrium(lg.Alloc())
	if err != nil || !ne {
		t.Fatalf("terminal allocation not NE: %v %v", ne, err)
	}
}

// TestLiveFacadeServer runs a tiny churn trace through the facade's
// server exports.
func TestLiveFacadeServer(t *testing.T) {
	trace, err := chanalloc.GenerateChurnTrace(chanalloc.DefaultChurnSpec(3, 2, 20, 5))
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 20 {
		t.Fatalf("trace has %d events, want 20", len(trace))
	}
	srv, err := chanalloc.NewLiveServer(chanalloc.LiveConfig{
		Channels: 3, Rate: chanalloc.TDMA(54), RateName: "tdma:54", Verify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var in bytes.Buffer
	enc := json.NewEncoder(&in)
	for _, req := range trace {
		if err := enc.Encode(req); err != nil {
			t.Fatal(err)
		}
	}
	var out bytes.Buffer
	if err := chanalloc.ServeLive(srv, &in, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(out.String(), "\n")
	if lines != len(trace)+1 { // hello + one update per event
		t.Fatalf("transcript has %d frames, want %d", lines, len(trace)+1)
	}
	if strings.Contains(out.String(), `"type":"error"`) {
		t.Fatalf("error frame in transcript:\n%s", out.String())
	}

	// The protocol version is part of the public surface.
	if chanalloc.LiveProtocolVersion != 1 {
		t.Fatalf("protocol version %d, want 1", chanalloc.LiveProtocolVersion)
	}
	if _, err := chanalloc.ParseChurnSpec("nope"); err == nil {
		t.Fatal("bad churn spec accepted")
	}
	if _, err := chanalloc.ParseRate("tdma:54"); err != nil {
		t.Fatal(err)
	}
}
