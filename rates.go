package chanalloc

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/multiradio/chanalloc/internal/bianchi"
	"github.com/multiradio/chanalloc/internal/macsim"
	"github.com/multiradio/chanalloc/internal/ratefn"
)

// ParseRate parses the rate-function specification grammar shared by the
// command-line tools (chanalloc, allocd):
//
//	tdma:R0                      constant rate R0 (reservation TDMA)
//	harmonic:R0:alpha            R0 / (1 + alpha·(k-1))
//	geometric:R0:beta            R0 · beta^(k-1)
//	csma-practical[:1mbps|:80211b]  Bianchi DCF saturation throughput
//	csma-optimal[:1mbps|:80211b]    optimal-backoff throughput
func ParseRate(spec string) (RateFunc, error) {
	parts := strings.Split(spec, ":")
	switch parts[0] {
	case "tdma":
		if len(parts) != 2 {
			return nil, fmt.Errorf("rate %q: want tdma:R0", spec)
		}
		r0, err := strconv.ParseFloat(parts[1], 64)
		if err != nil || r0 <= 0 {
			return nil, fmt.Errorf("rate %q: bad R0", spec)
		}
		return TDMA(r0), nil
	case "harmonic":
		if len(parts) != 3 {
			return nil, fmt.Errorf("rate %q: want harmonic:R0:alpha", spec)
		}
		r0, err1 := strconv.ParseFloat(parts[1], 64)
		alpha, err2 := strconv.ParseFloat(parts[2], 64)
		if err1 != nil || err2 != nil || r0 <= 0 || alpha < 0 {
			return nil, fmt.Errorf("rate %q: bad parameters", spec)
		}
		return HarmonicRate(r0, alpha), nil
	case "geometric":
		if len(parts) != 3 {
			return nil, fmt.Errorf("rate %q: want geometric:R0:beta", spec)
		}
		r0, err1 := strconv.ParseFloat(parts[1], 64)
		beta, err2 := strconv.ParseFloat(parts[2], 64)
		if err1 != nil || err2 != nil || r0 <= 0 || beta <= 0 || beta > 1 {
			return nil, fmt.Errorf("rate %q: bad parameters", spec)
		}
		return GeometricRate(r0, beta), nil
	case "csma-practical", "csma-optimal":
		p := Default80211b()
		if len(parts) == 2 {
			switch parts[1] {
			case "1mbps":
				p = Bianchi1Mbps()
			case "80211b":
				// default
			default:
				return nil, fmt.Errorf("rate %q: unknown PHY %q", spec, parts[1])
			}
		} else if len(parts) > 2 {
			return nil, fmt.Errorf("rate %q: want %s[:1mbps|:80211b]", spec, parts[0])
		}
		if parts[0] == "csma-practical" {
			return PracticalCSMA(p)
		}
		return OptimalCSMA(p)
	default:
		return nil, fmt.Errorf("unknown rate function %q", spec)
	}
}

// TDMA returns the reservation-TDMA rate function: R(k) = r0 for every
// k >= 1 (the paper's headline constant-rate regime, Figure 3's top line).
func TDMA(r0 float64) RateFunc { return ratefn.NewTDMA(r0) }

// HarmonicRate returns R(k) = r0 / (1 + alpha·(k-1)); alpha = 0 is constant
// and larger alpha degrades faster. Used by the ablation experiments to
// probe how much decay Theorem 1's sufficiency tolerates.
func HarmonicRate(r0, alpha float64) RateFunc { return ratefn.Harmonic{R0: r0, Alpha: alpha} }

// GeometricRate returns R(k) = r0 · beta^(k-1), 0 < beta <= 1.
func GeometricRate(r0, beta float64) RateFunc { return ratefn.Geometric{R0: r0, Beta: beta} }

// LinearRate returns R(k) = max(0, r0 - slope·(k-1)); it reaches exactly
// zero at finite load, exercising R = 0 edge cases.
func LinearRate(r0, slope float64) RateFunc { return ratefn.Linear{R0: r0, Slope: slope} }

// TableRate builds a rate function from explicit non-increasing samples,
// e.g. measurements from a testbed.
func TableRate(name string, values []float64) (RateFunc, error) {
	return ratefn.NewTable(name, values)
}

// ValidateRate checks the rate-function contract (R(0)=0, non-negative,
// non-increasing) for k in [1, maxK].
func ValidateRate(f RateFunc, maxK int) error { return ratefn.Validate(f, maxK) }

// FreezeRate samples f on 1..maxK into a lock-free table snapshot — the
// fast alternative to the memoised CSMA rates when the load domain is
// bounded (a game can never load a channel beyond its total radio count,
// so maxK = |N|·k covers everything). Beyond maxK the table saturates at
// its last value.
func FreezeRate(f RateFunc, maxK int) (RateFunc, error) { return ratefn.Freeze(f, maxK) }

// DCFParams parameterises Bianchi's 802.11 DCF model.
type DCFParams = bianchi.Params

// DCFResult is a solved DCF operating point.
type DCFResult = bianchi.Result

// Default80211b returns 802.11b DSSS parameters (11 Mbit/s data rate, long
// preamble).
func Default80211b() DCFParams { return bianchi.Default80211b() }

// Bianchi1Mbps returns the 1 Mbit/s parameter set of Bianchi's JSAC paper,
// useful for validating against his published numbers.
func Bianchi1Mbps() DCFParams { return bianchi.Bianchi1Mbps() }

// SolveDCF computes the saturation operating point for n stations under
// binary exponential backoff (the "practical CSMA/CA" of Figure 3).
func SolveDCF(p DCFParams, n int) (DCFResult, error) { return bianchi.Solve(p, n) }

// SolveDCFOptimal computes the operating point under the approximately
// throughput-optimal backoff (the "optimal CSMA/CA" of Figure 3).
func SolveDCFOptimal(p DCFParams, n int) (DCFResult, error) { return bianchi.SolveOptimal(p, n) }

// PracticalCSMA adapts the practical-DCF saturation throughput to a game
// rate function (monotone envelope + memoisation applied).
func PracticalCSMA(p DCFParams) (RateFunc, error) { return bianchi.PracticalRate(p) }

// OptimalCSMA adapts the optimal-backoff throughput to a game rate function.
func OptimalCSMA(p DCFParams) (RateFunc, error) { return bianchi.OptimalRate(p) }

// CSMASimResult reports a slot-level saturated CSMA/CA simulation.
type CSMASimResult = macsim.CSMAResult

// SimulateCSMA runs the slot-level DCF simulator for n stations; it
// validates the analytic model and the equal-share assumption (Jain index
// ≈ 1 across stations).
func SimulateCSMA(p DCFParams, n int, cycles int64, seed uint64) (CSMASimResult, error) {
	return macsim.SimulateCSMA(p, n, cycles, seed)
}

// TDMASimConfig parameterises the reservation-TDMA frame simulator.
type TDMASimConfig = macsim.TDMAConfig

// TDMASimResult reports a reservation-TDMA simulation.
type TDMASimResult = macsim.TDMAResult

// SimulateTDMA runs the frame-level reservation TDMA simulator.
func SimulateTDMA(cfg TDMASimConfig) (TDMASimResult, error) {
	return macsim.SimulateTDMA(cfg)
}

// EmpiricalCSMARate measures R(k) for k = 1..maxK by simulation and freezes
// the result into a table-backed rate function.
func EmpiricalCSMARate(p DCFParams, maxK int, cycles int64, seed uint64) (RateFunc, error) {
	return macsim.EmpiricalCSMARate(p, maxK, cycles, seed)
}

// ChannelSchedule is one channel's reservation-TDMA frame.
type ChannelSchedule = macsim.ChannelSchedule

// BuildTDMASchedules derives the per-channel round-robin TDMA frames that
// realise the game's equal-share assumption: each radio on a channel owns
// exactly one slot per frame.
func BuildTDMASchedules(a *Alloc) ([]ChannelSchedule, error) {
	return macsim.BuildSchedules(a)
}

// VerifyFairShare checks that schedules grant each user exactly
// k_{i,c}/k_c of every channel.
func VerifyFairShare(a *Alloc, schedules []ChannelSchedule) error {
	return macsim.VerifyFairShare(a, schedules)
}
