package chanalloc

import (
	"github.com/multiradio/chanalloc/internal/dynamics"
)

// Dynamics types, re-exported.
type (
	// DynamicsResult reports one convergence run.
	DynamicsResult = dynamics.Result
	// DynamicsOption configures the dynamics runners.
	DynamicsOption = dynamics.Option
	// Schedule orders users within a dynamics round.
	Schedule = dynamics.Schedule
	// DynamicsProcess selects the convergence process a batch replicates.
	DynamicsProcess = dynamics.Process
	// BatchSpec describes a batch of dynamics replicates run over the
	// parallel engine.
	BatchSpec = dynamics.BatchSpec
	// BatchResult aggregates a batch of dynamics runs.
	BatchResult = dynamics.BatchResult
)

// Batchable dynamics processes.
const (
	BestResponseProcess = dynamics.BestResponseProcess
	RadioGreedyProcess  = dynamics.RadioGreedyProcess
	SimultaneousProcess = dynamics.SimultaneousProcess
)

// Sweep schedules.
const (
	RoundRobin  = dynamics.RoundRobin
	RandomOrder = dynamics.RandomOrder
)

// RunBestResponse runs user-level best-response dynamics from start (which
// is cloned, not modified). A converged run ends at a Nash equilibrium.
func RunBestResponse(g *Game, start *Alloc, opts ...DynamicsOption) (DynamicsResult, error) {
	return dynamics.RunBestResponse(g, start, opts...)
}

// RunRadioGreedy runs radio-level greedy dynamics; each accepted move
// strictly increases the congestion potential, so the process cannot cycle.
func RunRadioGreedy(g *Game, start *Alloc, opts ...DynamicsOption) (DynamicsResult, error) {
	return dynamics.RunRadioGreedy(g, start, opts...)
}

// RunSimultaneous runs simultaneous best-response dynamics with inertia:
// with inertia = 1 symmetric configurations oscillate forever (the
// miscoordination the paper's sequential algorithm avoids); with
// inertia < 1 the process converges almost surely.
func RunSimultaneous(g *Game, start *Alloc, inertia float64, opts ...DynamicsOption) (DynamicsResult, error) {
	return dynamics.RunSimultaneous(g, start, inertia, opts...)
}

// RunBatch fans a batch of independent dynamics replicates out over the
// parallel engine: replicate r starts from a seeded random allocation
// drawn from a stream derived only from spec.Seed and r, so the aggregate
// is reproducible and worker-count independent.
func RunBatch(g *Game, spec BatchSpec) (*BatchResult, error) {
	return dynamics.RunBatch(g, spec)
}

// Potential evaluates the congestion potential Φ(S) = Σ_c Σ_{j<=k_c} R(j)/j.
func Potential(r RateFunc, a *Alloc) float64 { return dynamics.Potential(r, a) }

// RandomAlloc builds a full-deployment allocation with every radio on a
// uniformly random channel — the standard cold start for dynamics runs.
func RandomAlloc(g *Game, seed uint64) *Alloc { return dynamics.RandomAlloc(g, seed) }

// WithDynamicsSchedule selects the sweep order (default RoundRobin).
func WithDynamicsSchedule(s Schedule) DynamicsOption { return dynamics.WithSchedule(s) }

// WithDynamicsMaxRounds caps the number of sweeps.
func WithDynamicsMaxRounds(n int) DynamicsOption { return dynamics.WithMaxRounds(n) }

// WithDynamicsEps sets the minimum strict improvement for a move.
func WithDynamicsEps(eps float64) DynamicsOption { return dynamics.WithEps(eps) }

// WithDynamicsSeed fixes the RNG seed for RandomOrder schedules.
func WithDynamicsSeed(seed uint64) DynamicsOption { return dynamics.WithSeed(seed) }

// WithDynamicsWorkspace injects a reusable DP workspace into a run; borrow
// one from the shared pool (core exposes it through the live server and
// batch runner automatically) to make steady-state convergence runs
// allocation-free.
func WithDynamicsWorkspace(ws *Workspace) DynamicsOption { return dynamics.WithWorkspace(ws) }

// RunHeteroBestResponse is RunBestResponse over a heterogeneous-budget
// game: the identical sweep and quiet caching with per-user radio budgets.
func RunHeteroBestResponse(g *HeteroGame, start *Alloc, opts ...DynamicsOption) (DynamicsResult, error) {
	return dynamics.RunBestResponseHetero(g, start, opts...)
}
