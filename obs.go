package chanalloc

import (
	"io"
	"net/http"

	"github.com/multiradio/chanalloc/internal/obs"
)

// Observability facade: the process-global metrics registry and trace ring
// every instrumented layer (kernel, dynamics, engine, live service) writes
// into. Metrics are strictly write-only side channels — no library code
// reads them back — so enabling exposition never changes output bytes.
type (
	// ObsSample is one metric's point-in-time value in a snapshot.
	ObsSample = obs.Sample
	// ObsServer is a running metrics endpoint (ServeObs); Close stops it.
	ObsServer = obs.Server
	// ObsEvent is one structured entry of the bounded trace ring.
	ObsEvent = obs.Event
	// ObsCounter, ObsGauge and ObsHistogram are the registrable metric
	// kinds; their write paths are single atomic operations.
	ObsCounter   = obs.Counter
	ObsGauge     = obs.Gauge
	ObsHistogram = obs.Histogram
)

// NewObsCounter registers (or fetches, by name) a process-global
// monotonic counter.
func NewObsCounter(name string) *ObsCounter { return obs.NewCounter(name) }

// NewObsGauge registers (or fetches, by name) a process-global gauge.
func NewObsGauge(name string) *ObsGauge { return obs.NewGauge(name) }

// NewObsHistogram registers (or fetches, by name) a fixed-bucket
// histogram; bounds must be strictly increasing (a +Inf bucket is
// implicit).
func NewObsHistogram(name string, bounds []int64) *ObsHistogram {
	return obs.NewHistogram(name, bounds)
}

// ObsSnapshot returns every registered metric's current value, sorted by
// name — successive snapshots diff line-by-line.
func ObsSnapshot() []ObsSample { return obs.Snapshot() }

// ObsFlat flattens a snapshot to name → value (histograms contribute
// name_count and name_sum).
func ObsFlat(s []ObsSample) map[string]int64 { return obs.Flat(s) }

// ObsHandler returns the HTTP mux serving /metrics (Prometheus text),
// /metrics.json, /trace (NDJSON ring dump) and /debug/pprof/ for the
// process-global registry and trace ring.
func ObsHandler() http.Handler { return obs.NewMux(nil, nil) }

// ServeObs starts the observability endpoint on addr (":0" picks a free
// port; the chosen address is ObsServer.Addr). Pair with the daemons'
// -metrics flag.
func ServeObs(addr string) (*ObsServer, error) { return obs.ListenAndServe(addr) }

// ObsEmit appends a structured event to the global trace ring (bounded;
// oldest entries fall off).
func ObsEmit(kind, note string, a, b, c int64) { obs.Emit(kind, note, a, b, c) }

// WriteObsTrace dumps the global trace ring as NDJSON, oldest first.
func WriteObsTrace(w io.Writer) error { return obs.DefaultTrace.WriteNDJSON(w) }
