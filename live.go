package chanalloc

import (
	"io"

	"github.com/multiradio/chanalloc/internal/core"
	"github.com/multiradio/chanalloc/internal/dynamics"
	"github.com/multiradio/chanalloc/internal/hetero"
	"github.com/multiradio/chanalloc/internal/live"
)

// Live-game types, re-exported: the mutable form of the allocation game
// (users join, leave, renegotiate budgets) plus the warm-started
// re-equilibration and the NDJSON service around them.
type (
	// LiveGame is a mutable heterogeneous game whose derived state — the
	// dense allocation, the rate view and the welfare memo — stays
	// consistent across mutations.
	LiveGame = hetero.LiveGame
	// UserID is the stable identity of a live-game participant
	// (sequential from 1, never reused).
	UserID = hetero.UserID
	// LiveChurn summarises mutations since the last re-equilibration.
	LiveChurn = hetero.Churn
	// ReqResult reports a warm-started re-equilibration.
	ReqResult = dynamics.ReqResult
	// LiveConfig parameterises a live allocation server.
	LiveConfig = live.Config
	// LiveServer speaks the live NDJSON protocol over a reader/writer.
	LiveServer = live.Server
	// LiveRequest and LiveUpdate are the protocol's request and
	// per-event response payloads.
	LiveRequest = live.Request
	LiveUpdate  = live.Update
	// ChurnSpec parameterises a synthetic churn trace.
	ChurnSpec = live.ChurnSpec
	// LiveTotals aggregates session statistics across every server that
	// shares it via LiveConfig.Totals (a listening daemon's connections).
	LiveTotals = live.Totals
)

// LiveProtocolVersion identifies the live NDJSON frame schema.
const LiveProtocolVersion = live.ProtocolVersion

// NewLiveGame returns an empty mutable game over channels and rate.
func NewLiveGame(channels int, rate RateFunc) (*LiveGame, error) {
	return hetero.NewLiveGame(channels, rate)
}

// Requilibrate restores a live game to a Nash equilibrium after churn,
// warm-starting best-response dynamics from the previous equilibrium:
// quiet verdicts of users provably unaffected by the churn carry over, so
// the run issues no more — usually strictly fewer — best-response DP calls
// than a cold start, while ending at the identical allocation.
func Requilibrate(lg *LiveGame, opts ...DynamicsOption) (ReqResult, error) {
	return dynamics.Requilibrate(lg, opts...)
}

// NewLiveServer builds a live allocation server with an empty game.
func NewLiveServer(cfg LiveConfig) (*LiveServer, error) { return live.NewServer(cfg) }

// ServeLive runs one NDJSON conversation on the given transport.
func ServeLive(srv *LiveServer, r io.Reader, w io.Writer) error { return srv.Serve(r, w) }

// ParseChurnSpec parses the compact churn form
// "channels,initial,events[,seed]"; the rates and budget bounds come from
// DefaultChurnSpec.
func ParseChurnSpec(s string) (ChurnSpec, error) { return live.ParseChurnSpec(s) }

// DefaultChurnSpec fills a churn spec's free parameters: budgets uniform
// over [1, min(channels, 4)], unit arrival rate, steady population near
// the initial one.
func DefaultChurnSpec(channels, initial, events int, seed uint64) ChurnSpec {
	return live.DefaultChurnSpec(channels, initial, events, seed)
}

// GenerateChurnTrace renders a churn spec as a deterministic request
// stream whose leave/budget events name the ids a serving game assigns.
func GenerateChurnTrace(spec ChurnSpec) ([]LiveRequest, error) { return live.GenerateTrace(spec) }

// BorrowWorkspace takes a DP workspace from the shared pool; return it
// with ReturnWorkspace when done. Pair with WithDynamicsWorkspace to make
// steady-state convergence runs allocation-free.
func BorrowWorkspace() *Workspace { return core.Workspaces.Get() }

// ReturnWorkspace gives a borrowed workspace back to the shared pool.
func ReturnWorkspace(ws *Workspace) { core.Workspaces.Put(ws) }
