package chanalloc

import (
	"github.com/multiradio/chanalloc/internal/workload"
)

// Scenario is a named game instance from the scenario registry, optionally
// with a pinned strategy matrix (the paper's worked examples pin both).
type Scenario = workload.Scenario

// ScenarioFamily describes one registered scenario family (name, usage
// grammar, description) for CLI listings.
type ScenarioFamily = workload.Family

// ScenarioGenerator builds a scenario instance from the parameter text
// after the family name and the caller's rate function.
type ScenarioGenerator = workload.Generator

// ScenarioFigure1 returns the paper's Figure 1/2 worked example (a non-NE
// allocation violating Lemmas 1-3).
func ScenarioFigure1(r RateFunc) (*Scenario, error) { return workload.Figure1(r) }

// ScenarioFigure4 returns a NE with Figure 4's structure (exception user).
func ScenarioFigure4(r RateFunc) (*Scenario, error) { return workload.Figure4(r) }

// ScenarioFigure5 returns a NE with Figure 5's structure (no exception
// user).
func ScenarioFigure5(r RateFunc) (*Scenario, error) { return workload.Figure5(r) }

// ScenarioByName resolves a scenario from the open registry. Plain names
// ("fig1", "mesh") and parametric families ("random:8,6,3",
// "hetero:6,4,4,2,1") both resolve here; see ScenarioFamilies for the full
// grammar of every registered family.
func ScenarioByName(name string, r RateFunc) (*Scenario, error) {
	return workload.ByName(name, r)
}

// ScenarioNames lists the registered scenario families in sorted order.
func ScenarioNames() []string { return workload.Names() }

// ScenarioFamilies lists the registered families with usage and
// description — the source of CLI usage text.
func ScenarioFamilies() []ScenarioFamily { return workload.Families() }

// RegisterScenario adds a scenario family to the open registry, making it
// resolvable through ScenarioByName alongside the built-in workloads.
func RegisterScenario(f ScenarioFamily, gen ScenarioGenerator) error {
	return workload.Register(f, gen)
}
