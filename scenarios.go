package chanalloc

import (
	"github.com/multiradio/chanalloc/internal/workload"
)

// Scenario is a named game instance from the paper, optionally with a
// pinned strategy matrix.
type Scenario = workload.Scenario

// ScenarioFigure1 returns the paper's Figure 1/2 worked example (a non-NE
// allocation violating Lemmas 1-3).
func ScenarioFigure1(r RateFunc) (*Scenario, error) { return workload.Figure1(r) }

// ScenarioFigure4 returns a NE with Figure 4's structure (exception user).
func ScenarioFigure4(r RateFunc) (*Scenario, error) { return workload.Figure4(r) }

// ScenarioFigure5 returns a NE with Figure 5's structure (no exception
// user).
func ScenarioFigure5(r RateFunc) (*Scenario, error) { return workload.Figure5(r) }

// ScenarioByName resolves "fig1", "fig4" or "fig5".
func ScenarioByName(name string, r RateFunc) (*Scenario, error) {
	return workload.ByName(name, r)
}

// ScenarioNames lists the available paper scenarios.
func ScenarioNames() []string { return workload.Names() }
