package chanalloc

import (
	"github.com/multiradio/chanalloc/internal/core"
	"github.com/multiradio/chanalloc/internal/hetero"
	"github.com/multiradio/chanalloc/internal/spectrum"
)

// Heterogeneous-budget extension: per-user radio counts k_i (the paper's
// model generalised beyond uniform k; see EXPERIMENTS.md E11).
type (
	// HeteroGame is a channel allocation game with per-user budgets.
	HeteroGame = hetero.Game
)

// NewHeteroGame builds a game where user i owns budgets[i] radios
// (1 <= k_i <= channels).
func NewHeteroGame(channels int, budgets []int, rate RateFunc) (*HeteroGame, error) {
	return hetero.NewGame(channels, budgets, rate)
}

// HeteroAlgorithm1 runs the sequential greedy allocation with per-user
// budgets; empirically it lands on exact Nash equilibria across rate
// families (E11).
func HeteroAlgorithm1(g *HeteroGame, tie TieBreak, seed uint64) (*Alloc, error) {
	return hetero.Algorithm1(g, tie, seed)
}

// LoadBalanced reports whether channel loads differ by at most one (the
// generalised Proposition 1 property).
func LoadBalanced(a *Alloc) bool { return hetero.LoadBalanced(a) }

// HeteroOptimalWelfareAllPlaced computes the maximum total rate over load
// vectors placing all Σ_i k_i radios — the heterogeneous analogue of
// OptimalWelfareAllPlaced and the denominator of HeteroPriceOfAnarchy.
func HeteroOptimalWelfareAllPlaced(g *HeteroGame) (float64, []int) {
	return hetero.OptimalWelfareAllPlaced(g)
}

// HeteroOptimalWelfareIdleAllowed computes the maximum total rate when
// radios may idle: min(|C|, Σ_i k_i) channels lit with one radio each.
func HeteroOptimalWelfareIdleAllowed(g *HeteroGame) (float64, []int) {
	return hetero.OptimalWelfareIdleAllowed(g)
}

// HeteroPriceOfAnarchy returns Welfare(a) divided by the all-placed
// heterogeneous welfare optimum (1 means system-optimal; see E11).
func HeteroPriceOfAnarchy(g *HeteroGame, a *Alloc) (float64, error) {
	return hetero.PriceOfAnarchy(g, a)
}

// HeteroFindParetoImprovement searches for an allocation Pareto-dominating
// a in a heterogeneous game (nil when a is Pareto-optimal over the full
// strategy space). Symmetry-reduced over equal-budget user classes like
// FindParetoImprovement; capped by the full unreduced profile count.
func HeteroFindParetoImprovement(g *HeteroGame, a *Alloc, eps float64, maxProfiles int64) (*Alloc, error) {
	return hetero.FindParetoImprovement(g, a, eps, maxProfiles)
}

// HeteroFindParetoImprovementUnreduced is the direct grid Pareto search —
// the differential baseline for HeteroFindParetoImprovement.
func HeteroFindParetoImprovementUnreduced(g *HeteroGame, a *Alloc, eps float64, maxProfiles int64) (*Alloc, error) {
	return hetero.FindParetoImprovementUnreduced(g, a, eps, maxProfiles)
}

// HeteroEnumerateNE collects every exact Nash equilibrium of a tiny
// heterogeneous game (capped by maxProfiles). Like EnumerateNE the search
// is symmetry-reduced over equal-budget user classes.
func HeteroEnumerateNE(g *HeteroGame, maxProfiles int64) ([]*Alloc, error) {
	return hetero.EnumerateNE(g, maxProfiles)
}

// HeteroEnumerateNECanonical enumerates equilibrium orbits of a
// heterogeneous game: one canonical representative per orbit with its
// multiplicity (see CanonicalNE).
func HeteroEnumerateNECanonical(g *HeteroGame, maxProfiles int64) ([]CanonicalNE, error) {
	return hetero.EnumerateNECanonical(g, maxProfiles)
}

// HeteroExpandNEOrbits reconstructs the unreduced HeteroEnumerateNE output
// from canonical representatives.
func HeteroExpandNEOrbits(g *HeteroGame, reps []CanonicalNE) ([]*Alloc, error) {
	return hetero.ExpandNEOrbits(g, reps)
}

// Spectrum modelling: bands, channels, devices and radio-level assignments.
type (
	// Band is a frequency band of equal-width orthogonal channels.
	Band = spectrum.Band
	// SpectrumChannel is one channel of a band, with its center frequency.
	SpectrumChannel = spectrum.Channel
	// Device is a multi-radio node.
	Device = spectrum.Device
	// Deployment binds devices to a band.
	Deployment = spectrum.Deployment
	// Assignment maps one radio of one device to a concrete channel.
	Assignment = spectrum.Assignment
)

// ISM2400 returns the 2.4 GHz ISM band as its three orthogonal channels.
func ISM2400() Band { return spectrum.ISM2400() }

// UNII5GHz returns a 5 GHz U-NII band with eight orthogonal channels.
func UNII5GHz() Band { return spectrum.UNII5GHz() }

// NewDeployment validates devices against a band.
func NewDeployment(band Band, devs []Device) (*Deployment, error) {
	return spectrum.NewDeployment(band, devs)
}

// Placer exposes the per-user greedy placement routine shared by
// Algorithm 1 and the distributed protocol.
type Placer = core.Placer
